"""Tests for Convert2SuperNode and the FindBestCommunity kernel."""

import numpy as np
import pytest

from repro.accum import make_accumulator
from repro.core.findbest import find_best_pass
from repro.core.flow import FlowNetwork
from repro.core.mapequation import MapEquation
from repro.core.partition import Partition
from repro.core.supernode import convert_to_supernodes
from repro.core.update import update_members
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.sim.context import HardwareContext
from repro.sim.counters import KernelStats
from repro.sim.machine import baseline_machine


def _fixture(directed=False):
    if directed:
        g = from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (3, 4), (4, 3), (4, 0)],
            directed=True, num_vertices=5,
        )
    else:
        g, _ = ring_of_cliques(3, 4)
    return FlowNetwork.from_graph(g)


class TestSupernode:
    @pytest.mark.parametrize("directed", [False, True])
    def test_codelength_invariant_under_coarsening(self, directed):
        """Coarsening a partition into supernodes must preserve its
        codelength (the singleton partition of the coarse graph IS the
        original partition)."""
        net = _fixture(directed)
        # arbitrary 2-module split
        labels = np.array([0, 0, 1, 1, 1] if directed else [0] * 4 + [1] * 8)
        k = 2
        src = np.repeat(np.arange(net.num_vertices), np.diff(net.indptr))
        cross = labels[src] != labels[net.indices]
        exit_ = np.bincount(labels[src[cross]], weights=net.arc_flow[cross], minlength=k)
        enter = np.bincount(
            labels[net.indices[cross]], weights=net.arc_flow[cross], minlength=k
        )
        flow = np.bincount(labels, weights=net.node_flow, minlength=k)
        L_fine = MapEquation.codelength(enter, exit_, flow, net.node_flow)

        coarse = convert_to_supernodes(net, labels, k)
        p = Partition(coarse)
        # note: node-flow term differs between levels (it is constant per
        # level); compare the level-independent parts instead
        L_coarse = MapEquation.codelength(
            p.module_enter, p.module_exit, p.module_flow, net.node_flow
        )
        assert L_coarse == pytest.approx(L_fine, abs=1e-12)

    def test_flow_conserved(self):
        net = _fixture()
        labels = np.array([0] * 4 + [1] * 4 + [2] * 4)
        coarse = convert_to_supernodes(net, labels, 3)
        assert coarse.node_flow.sum() == pytest.approx(net.node_flow.sum())
        assert coarse.arc_flow.sum() == pytest.approx(net.arc_flow.sum())

    def test_intra_flow_becomes_self_loop(self):
        net = _fixture()
        labels = np.zeros(net.num_vertices, dtype=np.int64)
        coarse = convert_to_supernodes(net, labels, 1)
        assert coarse.num_vertices == 1
        assert coarse.num_arcs == 1  # one big self-loop
        assert coarse.node_out[0] == pytest.approx(0.0)

    def test_label_validation(self):
        net = _fixture()
        with pytest.raises(ValueError):
            convert_to_supernodes(net, np.zeros(3, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            convert_to_supernodes(
                net, np.full(net.num_vertices, 5, dtype=np.int64), 2
            )

    def test_hardware_charging(self):
        net = _fixture()
        ctx = HardwareContext(baseline_machine())
        ks = KernelStats()
        labels = np.array([0] * 6 + [1] * 6)
        convert_to_supernodes(net, labels, 2, ctx, ks)
        assert ks.supernode.instructions > 0


class TestUpdateMembers:
    def test_composition(self):
        mapping = np.array([0, 0, 1, 2])
        level = np.array([5, 5, 9])
        out = update_members(mapping, level)
        assert list(out) == [5, 5, 5, 9]

    def test_bounds_check(self):
        with pytest.raises(ValueError):
            update_members(np.array([3]), np.array([0, 1]))

    def test_charges_update_kernel(self):
        ctx = HardwareContext(baseline_machine())
        ks = KernelStats()
        update_members(np.array([0, 1]), np.array([0, 0]), ctx, ks)
        assert ks.update_members.instructions > 0


class TestFindBestPass:
    @pytest.mark.parametrize("directed", [False, True])
    def test_pass_never_increases_codelength(self, directed):
        net = _fixture(directed)
        p = Partition(net)
        ctx = HardwareContext(baseline_machine())
        ks = KernelStats()
        acc = make_accumulator("softhash", ctx, ks.findbest_hash, ks.findbest_overflow)
        before = p.codelength
        moves, moved = find_best_pass(p, acc, ctx, ks)
        assert p.codelength <= before + 1e-12
        assert moves == len(moved)
        assert p.codelength == pytest.approx(p.codelength_recomputed(), abs=1e-9)

    def test_converges_to_fixed_point(self):
        net = _fixture()
        p = Partition(net)
        ctx = HardwareContext(baseline_machine())
        ks = KernelStats()
        acc = make_accumulator("plain")
        for _ in range(20):
            moves, _ = find_best_pass(p, acc, ctx, ks)
            if moves == 0:
                break
        assert moves == 0
        # at the fixed point the cliques are modules
        assert p.num_modules == 3

    def test_restricted_order_touches_only_those_vertices(self):
        net = _fixture()
        p = Partition(net)
        ctx = HardwareContext(baseline_machine())
        ks = KernelStats()
        acc = make_accumulator("plain")
        order = np.array([0, 1], dtype=np.int64)
        before = p.module.copy()
        _, moved = find_best_pass(p, acc, ctx, ks, order=order)
        changed = np.flatnonzero(before != p.module)
        assert set(changed.tolist()) <= {0, 1}
        assert set(moved) <= {0, 1}

    def test_moved_vertices_reported_accurately(self):
        net = _fixture()
        p = Partition(net)
        ctx = HardwareContext(baseline_machine())
        ks = KernelStats()
        acc = make_accumulator("plain")
        before = p.module.copy()
        _, moved = find_best_pass(p, acc, ctx, ks)
        changed = set(np.flatnonzero(before != p.module).tolist())
        assert changed == set(moved)
