"""Parity and regression tests for the batched vectorized hot path.

The batched formulation (:meth:`repro.core.vectorized.Workspace.best_moves`,
segment sums over stable-sorted (vertex, candidate-module) keys) must be
functionally indistinguishable from the retained unbatched reference
(:func:`repro.core.vectorized._best_moves`) on every graph class, and
reusing one :class:`~repro.core.vectorized.Workspace` across passes,
levels, and whole runs must never leak state.
"""

import numpy as np
import pytest

from repro.core.flow import FlowNetwork
from repro.core.infomap import run_infomap
from repro.core.vectorized import (
    Workspace,
    _best_moves,
    _module_state,
    run_infomap_vectorized,
)
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.util.rng import make_rng


def _directed_graph():
    return from_edges(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (5, 0),
         (1, 4), (4, 1)],
        directed=True, num_vertices=6,
    )


def _weighted_graph():
    rng = make_rng(7)
    g, _ = planted_partition(4, 15, 0.4, 0.03, seed=3)
    src, dst, _ = g.edge_array()
    edges = [
        (int(u), int(v), float(w))
        for u, v, w in zip(src, dst, rng.uniform(0.2, 3.0, len(src)))
    ]
    return from_edges(edges, num_vertices=g.num_vertices)


def _module_states(net, count=3, seed=0):
    """Singleton state plus a few best-move-applied successors."""
    n = net.num_vertices
    module = np.arange(n, dtype=np.int64)
    states = [module]
    for _ in range(count - 1):
        enter, exit_, flow = _module_state(net, module, n)
        verts, targets, _ = _best_moves(net, module, enter, exit_, flow)
        if len(verts) == 0:
            break
        module = module.copy()
        module[verts] = targets
        states.append(module)
    return states


GRAPHS = {
    "undirected": lambda: ring_of_cliques(6, 5)[0],
    "directed": _directed_graph,
    "weighted": _weighted_graph,
    "planted": lambda: planted_partition(5, 25, 0.3, 0.02, seed=2)[0],
}


class TestBestMovesParity:
    """Batched sweep == unbatched reference, on every graph class."""

    @pytest.mark.parametrize("kind", list(GRAPHS))
    def test_identical_moves_and_deltas(self, kind):
        net = FlowNetwork.from_graph(GRAPHS[kind]())
        n = net.num_vertices
        ws = Workspace().bind(net)
        for module in _module_states(net):
            enter, exit_, flow = _module_state(net, module, n)
            rv, rt, rd = _best_moves(net, module, enter, exit_, flow)
            bv, bt, bd = ws.best_moves(module, enter, exit_, flow)
            assert np.array_equal(rv, bv), kind
            assert np.array_equal(rt, bt), kind
            assert rd == pytest.approx(bd, abs=1e-12)

    @pytest.mark.parametrize("kind", list(GRAPHS))
    def test_module_state_identical(self, kind):
        net = FlowNetwork.from_graph(GRAPHS[kind]())
        n = net.num_vertices
        ws = Workspace().bind(net)
        rng = make_rng(1)
        for labels in (
            np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            rng.integers(0, max(2, n // 3), n).astype(np.int64),
        ):
            k = int(labels.max()) + 1
            ref = _module_state(net, labels, k)
            got = ws.module_state(labels, k)
            for a, b in zip(ref, got):
                assert np.array_equal(a, b), kind

    def test_converged_state_has_no_moves(self):
        g, truth = ring_of_cliques(3, 4)
        net = FlowNetwork.from_graph(g)
        ws = Workspace().bind(net)
        n = net.num_vertices
        enter, exit_, flow = _module_state(net, truth.astype(np.int64), n)
        verts, _, _ = ws.best_moves(truth.astype(np.int64), enter, exit_, flow)
        assert len(verts) == 0


class TestEngineParity:
    """The batched engine matches the sequential engine's objective."""

    @pytest.mark.parametrize("kind", ["undirected", "directed", "weighted"])
    def test_codelength_close_to_sequential(self, kind):
        g = GRAPHS[kind]()
        rs = run_infomap(g)
        rv = run_infomap_vectorized(g)
        assert abs(rv.codelength - rs.codelength) / rs.codelength < 0.05
        assert rv.codelength <= rv.one_level_codelength + 1e-9

    def test_run_infomap_engine_dispatch(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        via_entry = run_infomap(g, engine="vectorized", shuffle_seed=3)
        direct = run_infomap_vectorized(g, seed=3)
        assert np.array_equal(via_entry.modules, direct.modules)
        assert via_entry.codelength == direct.codelength

    def test_run_infomap_rejects_unknown_engine(self):
        g, _ = ring_of_cliques(2, 3)
        with pytest.raises(ValueError, match="engine"):
            run_infomap(g, engine="turbo")


class TestWorkspaceReuse:
    """One Workspace across passes/levels/runs must not leak state."""

    def test_reuse_across_graphs_matches_fresh(self):
        shared = Workspace()
        graphs = [
            planted_partition(5, 30, 0.3, 0.01, seed=2)[0],
            ring_of_cliques(4, 6)[0],
            _directed_graph(),
            planted_partition(3, 10, 0.5, 0.05, seed=9)[0],  # smaller: shrink
        ]
        for g in graphs:
            reused = run_infomap_vectorized(g, workspace=shared)
            fresh = run_infomap_vectorized(g)
            assert np.array_equal(reused.modules, fresh.modules), g.name
            assert reused.codelength == fresh.codelength
            assert reused.rounds == fresh.rounds

    def test_reuse_across_module_states_matches_fresh(self):
        net = FlowNetwork.from_graph(GRAPHS["planted"]())
        n = net.num_vertices
        shared = Workspace().bind(net)
        for module in _module_states(net, count=4):
            enter, exit_, flow = _module_state(net, module, n)
            fresh = Workspace().bind(net)
            sv, st, sd = shared.best_moves(module, enter, exit_, flow)
            fv, ft, fd = fresh.best_moves(module, enter, exit_, flow)
            assert np.array_equal(sv, fv)
            assert np.array_equal(st, ft)
            assert np.array_equal(sd, fd)

    def test_rebind_to_smaller_network_slices_buffers(self):
        big = FlowNetwork.from_graph(planted_partition(5, 30, 0.3, 0.01, seed=2)[0])
        small = FlowNetwork.from_graph(ring_of_cliques(3, 4)[0])
        ws = Workspace().bind(big)
        module = np.arange(big.num_vertices, dtype=np.int64)
        e, x, f = ws.module_state(module, big.num_vertices)
        ws.best_moves(module, e, x, f)
        buffers_before = {k: v.size for k, v in ws._bufs.items()}
        ws.bind(small)
        module_s = np.arange(small.num_vertices, dtype=np.int64)
        e, x, f = ws.module_state(module_s, small.num_vertices)
        verts, targets, deltas = ws.best_moves(module_s, e, x, f)
        # capacity-backed buffers kept their allocation (no realloc churn)
        for name, size in buffers_before.items():
            assert ws._bufs[name].size == size, name
        # and results on the small net still match its fresh-workspace run
        fv, ft, fd = Workspace().bind(small).best_moves(module_s, e, x, f)
        assert np.array_equal(verts, fv)
        assert np.array_equal(targets, ft)
        assert np.array_equal(deltas, fd)
