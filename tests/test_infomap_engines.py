"""End-to-end tests for the three Infomap engines."""

import numpy as np
import pytest

from repro.core.infomap import run_infomap
from repro.core.multicore import run_infomap_multicore
from repro.core.vectorized import run_infomap_vectorized
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.quality.nmi import normalized_mutual_information


def _aligned(modules, truth):
    """Each ground-truth community maps into exactly one found module."""
    for c in np.unique(truth):
        if len(np.unique(modules[truth == c])) != 1:
            return False
    return True


class TestSequentialEngine:
    def test_ring_of_cliques_exact(self):
        g, truth = ring_of_cliques(8, 6)
        r = run_infomap(g)
        assert r.num_modules == 8
        assert _aligned(r.modules, truth)
        assert r.codelength < r.one_level_codelength

    def test_planted_partition_recovered(self):
        g, truth = planted_partition(5, 30, 0.4, 0.01, seed=2)
        r = run_infomap(g)
        assert normalized_mutual_information(r.modules, truth) > 0.95

    def test_deterministic(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        a = run_infomap(g, backend="softhash")
        b = run_infomap(g, backend="softhash")
        assert np.array_equal(a.modules, b.modules)
        assert a.codelength == b.codelength

    def test_backends_identical_partitions(self):
        g, _ = planted_partition(4, 25, 0.4, 0.02, seed=5)
        results = {b: run_infomap(g, backend=b) for b in ("plain", "softhash", "asa")}
        for b in ("softhash", "asa"):
            assert np.array_equal(results[b].modules, results["plain"].modules), b
            assert results[b].codelength == pytest.approx(
                results["plain"].codelength, abs=1e-12
            )

    def test_fidelity_modes_identical_partitions(self):
        from repro.sim.machine import baseline_machine

        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=3)
        rf = run_infomap(g, backend="softhash", machine=baseline_machine("fast"))
        rd = run_infomap(g, backend="softhash", machine=baseline_machine("detailed"))
        assert np.array_equal(rf.modules, rd.modules)
        # instruction counts are mode-independent
        assert rf.stats.findbest.instructions == pytest.approx(
            rd.stats.findbest.instructions
        )

    def test_worklist_matches_full_quality(self):
        g, truth = planted_partition(5, 25, 0.4, 0.02, seed=4)
        rw = run_infomap(g, worklist=True)
        rf = run_infomap(g, worklist=False)
        assert abs(rw.codelength - rf.codelength) / rf.codelength < 0.05
        assert normalized_mutual_information(rw.modules, truth) > 0.9

    def test_directed_graph(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (5, 0)],
            directed=True, num_vertices=6,
        )
        r = run_infomap(g)
        assert r.num_modules == 2
        assert r.codelength <= r.one_level_codelength + 1e-9

    def test_iteration_records(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=6)
        r = run_infomap(g, backend="softhash")
        assert len(r.iterations) >= 2
        assert [it.iteration for it in r.iterations] == list(
            range(1, len(r.iterations) + 1)
        )
        assert all(it.seconds >= 0 for it in r.iterations)
        # codelength is non-increasing across records
        ls = [it.codelength for it in r.iterations]
        assert all(b <= a + 1e-9 for a, b in zip(ls, ls[1:]))

    def test_modules_dense_labels(self):
        g, _ = ring_of_cliques(5, 4)
        r = run_infomap(g)
        assert set(np.unique(r.modules)) == set(range(r.num_modules))
        assert len(r.modules) == g.num_vertices

    def test_single_clique_collapses(self):
        g, _ = ring_of_cliques(1, 5)
        r = run_infomap(g)
        assert r.num_modules == 1

    def test_kernel_seconds_structure(self):
        g, _ = ring_of_cliques(4, 5)
        r = run_infomap(g, backend="softhash")
        secs = r.kernel_seconds()
        assert set(secs) == {
            "pagerank", "findbest_hash", "findbest_overflow",
            "findbest_other", "supernode", "update_members",
        }
        assert all(v >= 0 for v in secs.values())
        assert r.total_seconds == pytest.approx(sum(secs.values()), rel=1e-9)

    def test_max_levels_respected(self):
        g, _ = ring_of_cliques(8, 4)
        r = run_infomap(g, max_levels=1)
        assert r.levels == 1

    def test_shuffle_seed_changes_order_not_quality(self):
        g, truth = planted_partition(4, 25, 0.4, 0.02, seed=8)
        a = run_infomap(g, shuffle_seed=1)
        b = run_infomap(g, shuffle_seed=1)
        assert np.array_equal(a.modules, b.modules)  # seeded => reproducible
        c = run_infomap(g, shuffle_seed=2)
        assert normalized_mutual_information(c.modules, truth) > 0.9


class TestVectorizedEngine:
    def test_ring_of_cliques_exact(self):
        g, truth = ring_of_cliques(8, 6)
        r = run_infomap_vectorized(g)
        assert r.num_modules == 8
        assert _aligned(r.modules, truth)

    def test_codelength_close_to_sequential(self):
        g, _ = planted_partition(5, 30, 0.4, 0.01, seed=2)
        rs = run_infomap(g)
        rv = run_infomap_vectorized(g)
        assert abs(rv.codelength - rs.codelength) / rs.codelength < 0.05

    def test_deterministic(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        a = run_infomap_vectorized(g, seed=3)
        b = run_infomap_vectorized(g, seed=3)
        assert np.array_equal(a.modules, b.modules)

    def test_directed(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (5, 0)],
            directed=True, num_vertices=6,
        )
        r = run_infomap_vectorized(g)
        assert r.num_modules == 2

    def test_improvement_over_singletons(self):
        g, _ = planted_partition(6, 20, 0.5, 0.02, seed=9)
        r = run_infomap_vectorized(g)
        assert r.codelength < r.one_level_codelength * 1.5
        assert r.rounds >= 1


class TestMulticoreEngine:
    def test_quality_parity_with_sequential(self):
        g, truth = planted_partition(5, 30, 0.4, 0.01, seed=2)
        rs = run_infomap(g)
        rm = run_infomap_multicore(g, num_cores=4)
        assert abs(rm.codelength - rs.codelength) / rs.codelength < 0.05
        assert normalized_mutual_information(rm.modules, truth) > 0.9

    def test_per_core_stats_count(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        rm = run_infomap_multicore(g, num_cores=3)
        assert len(rm.per_core_stats) == 3
        assert rm.num_cores == 3

    def test_work_distributed(self):
        g, _ = planted_partition(6, 40, 0.3, 0.01, seed=7)
        rm = run_infomap_multicore(g, num_cores=2, backend="softhash")
        i0 = rm.per_core_stats[0].findbest.instructions
        i1 = rm.per_core_stats[1].findbest.instructions
        assert i0 > 0 and i1 > 0
        assert 0.3 < i0 / (i0 + i1) < 0.7  # roughly balanced

    def test_total_work_close_to_single_core(self):
        g, _ = planted_partition(6, 40, 0.3, 0.01, seed=7)
        r1 = run_infomap_multicore(g, num_cores=1, backend="softhash")
        rm = run_infomap_multicore(g, num_cores=4, backend="softhash")
        total_1 = sum(ks.findbest.instructions for ks in r1.per_core_stats)
        total_mc = sum(ks.findbest.instructions for ks in rm.per_core_stats)
        # sharding across cores must not inflate the aggregate sweep work:
        # the BSP schedule visits the same worklists regardless of P (only
        # commit conflicts can add passes)
        assert abs(total_mc - total_1) / max(total_1, 1) < 0.3

    def test_parallel_time_shrinks_with_cores(self):
        g, _ = planted_partition(8, 50, 0.3, 0.005, seed=11)
        t = {}
        for p in (1, 4):
            rm = run_infomap_multicore(g, num_cores=p, backend="softhash")
            t[p] = rm.hash_seconds_parallel
        assert t[4] < t[1]

    def test_single_core_deterministic_and_close_to_sequential(self):
        # The BSP schedule (batch propose/commit) differs from the
        # sequential engine's immediate-apply sweep, so partitions need
        # not be bit-equal — but quality must match and the run must be
        # reproducible at a fixed seed.
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        rs = run_infomap(g, backend="softhash")
        rm = run_infomap_multicore(g, num_cores=1, backend="softhash")
        assert abs(rm.codelength - rs.codelength) / rs.codelength < 0.05
        rm2 = run_infomap_multicore(g, num_cores=1, backend="softhash")
        assert np.array_equal(rm.modules, rm2.modules)

    def test_invalid_cores(self):
        g, _ = ring_of_cliques(2, 3)
        with pytest.raises(ValueError):
            run_infomap_multicore(g, num_cores=0)

    def test_asa_backend_multicore(self):
        g, _ = planted_partition(4, 25, 0.4, 0.02, seed=5)
        rm = run_infomap_multicore(g, num_cores=2, backend="asa")
        rs = run_infomap_multicore(g, num_cores=2, backend="softhash")
        assert np.array_equal(rm.modules, rs.modules)
        # ASA reduces hash-operation instructions on every core
        for a, s in zip(rm.per_core_stats, rs.per_core_stats):
            assert (
                a.findbest_hash_total.instructions
                < s.findbest_hash_total.instructions
            )
