"""Tests for the ASA CAM and sort_and_merge (Section III semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asa.cam import CAM
from repro.asa.merge import sort_and_merge


class TestCAMBasics:
    def test_insert_then_hit(self):
        cam = CAM(4)
        assert cam.accumulate(1, 1.0) == "insert"
        assert cam.accumulate(1, 2.0) == "hit"
        assert cam.peek() == {1: 3.0}

    def test_three_outcomes(self):
        cam = CAM(2)
        assert cam.accumulate(1, 1.0) == "insert"
        assert cam.accumulate(2, 1.0) == "insert"
        assert cam.accumulate(1, 1.0) == "hit"
        assert cam.accumulate(3, 1.0) == "evict"

    def test_lru_victim_is_least_recent(self):
        cam = CAM(2)
        cam.accumulate(1, 1.0)
        cam.accumulate(2, 1.0)
        cam.accumulate(1, 1.0)  # touch 1 -> 2 is LRU
        cam.accumulate(3, 1.0)  # evicts 2
        assert set(cam.peek()) == {1, 3}
        non, over = cam.gather()
        assert over == [(2, 1.0)]

    def test_gather_drains(self):
        cam = CAM(4)
        cam.accumulate(1, 1.0)
        non, over = cam.gather()
        assert non == [(1, 1.0)] and over == []
        assert len(cam) == 0 and cam.overflow_count == 0

    def test_evicted_key_reenters_fresh(self):
        cam = CAM(1)
        cam.accumulate(1, 1.0)
        cam.accumulate(2, 1.0)  # evicts 1
        cam.accumulate(1, 5.0)  # evicts 2; key 1 re-enters with fresh sum
        non, over = cam.gather()
        assert dict(non) == {1: 5.0}
        assert sorted(dict(over).items()) == [(1, 1.0), (2, 1.0)]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CAM(0)

    def test_stats(self):
        cam = CAM(2)
        cam.accumulate(1, 1.0)
        cam.accumulate(1, 1.0)
        cam.accumulate(2, 1.0)
        cam.accumulate(3, 1.0)
        s = cam.stats
        assert s.accumulates == 4
        assert s.hits == 1
        assert s.inserts == 3
        assert s.evictions == 1

    def test_reset(self):
        cam = CAM(2)
        cam.accumulate(1, 1.0)
        cam.reset()
        assert len(cam) == 0 and cam.stats.accumulates == 0


class TestSortAndMerge:
    def test_empty(self):
        merged, stats = sort_and_merge([], [])
        assert merged == [] and stats.elements == 0

    def test_merges_duplicates(self):
        merged, stats = sort_and_merge([(1, 1.0), (2, 2.0)], [(1, 3.0)])
        assert merged == [(1, 4.0), (2, 2.0)]
        assert stats.merged_duplicates == 1

    def test_sorted_output(self):
        merged, _ = sort_and_merge([(5, 1.0), (1, 1.0)], [(3, 1.0)])
        assert [k for k, _ in merged] == [1, 3, 5]

    def test_comparison_estimate(self):
        _, stats = sort_and_merge([(i, 1.0) for i in range(8)], [])
        assert stats.comparisons == pytest.approx(8 * 3)


class TestExactnessProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.floats(0.001, 10.0)),
            min_size=0,
            max_size=300,
        ),
        st.integers(1, 16),
    )
    def test_cam_plus_merge_is_exact(self, ops, capacity):
        """Regardless of CAM size, gather + sort_and_merge yields exact sums
        — the correctness contract of Section III."""
        cam = CAM(capacity)
        expected: dict[int, float] = {}
        for k, v in ops:
            cam.accumulate(k, v)
            expected[k] = expected.get(k, 0.0) + v
        merged, _ = sort_and_merge(*cam.gather())
        got = dict(merged)
        assert set(got) == set(expected)
        for k in expected:
            assert got[k] == pytest.approx(expected[k], rel=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        st.integers(1, 64),
    )
    def test_capacity_bound_respected(self, keys, capacity):
        cam = CAM(capacity)
        for k in keys:
            cam.accumulate(k, 1.0)
            assert len(cam) <= capacity
