"""Tests for the map equation and the incremental Partition state.

The key property test: ``delta_move`` must exactly predict the difference
in recomputed codelength for any legal move — this pins the delta algebra
to the expanded map equation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flow import FlowNetwork
from repro.core.mapequation import MapEquation
from repro.core.partition import Partition
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition, ring_of_cliques


def _net(directed=False):
    if directed:
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (0, 3)],
            directed=True,
            num_vertices=5,
        )
    else:
        g, _ = ring_of_cliques(3, 4)
    return FlowNetwork.from_graph(g)


def _pair_maps(net, partition, v):
    """Oracle computation of outTo/inFrom maps for vertex v."""
    out_to: dict[int, float] = {}
    idx, flow = net.out_arcs(v)
    for t, f in zip(idx.tolist(), flow.tolist()):
        if t == v:
            continue
        m = int(partition.module[t])
        out_to[m] = out_to.get(m, 0.0) + f
    in_from: dict[int, float] = {}
    idx, flow = net.in_arcs(v)
    for t, f in zip(idx.tolist(), flow.tolist()):
        if t == v:
            continue
        m = int(partition.module[t])
        in_from[m] = in_from.get(m, 0.0) + f
    return out_to, in_from


class TestMapEquation:
    def test_one_level_is_entropy(self):
        flows = np.array([0.25, 0.25, 0.25, 0.25])
        assert MapEquation.one_level_codelength(flows) == pytest.approx(2.0)

    def test_singleton_partition_matches_direct(self):
        net = _net()
        L = MapEquation.codelength(
            net.node_in, net.node_out, net.node_flow, net.node_flow
        )
        p = Partition(net)
        assert p.codelength == pytest.approx(L)

    def test_index_plus_module_decomposition(self):
        net = _net()
        enter = net.node_in.copy()
        exit_ = net.node_out.copy()
        flow = net.node_flow.copy()
        total = MapEquation.codelength(enter, exit_, flow, net.node_flow)
        parts = MapEquation.index_codelength(enter) + MapEquation.module_codelength(
            exit_, flow, net.node_flow
        )
        assert total == pytest.approx(parts)

    def test_good_partition_shorter_than_singletons(self):
        g, labels = ring_of_cliques(4, 5)
        net = FlowNetwork.from_graph(g)
        p = Partition(net)
        singleton_L = p.codelength
        # compute L of the planted clique partition from arrays
        k = 4
        src = np.repeat(np.arange(net.num_vertices), np.diff(net.indptr))
        cross = labels[src] != labels[net.indices]
        exit_ = np.bincount(labels[src[cross]], weights=net.arc_flow[cross], minlength=k)
        flow = np.bincount(labels, weights=net.node_flow, minlength=k)
        clique_L = MapEquation.codelength(exit_, exit_, flow, net.node_flow)
        assert clique_L < singleton_L

    def test_empty_modules_ignored(self):
        # zero-padded arrays must not change the codelength
        e = np.array([0.1, 0.2])
        f = np.array([0.3, 0.7])
        nf = np.array([0.3, 0.7])
        a = MapEquation.codelength(e, e, f, nf)
        b = MapEquation.codelength(
            np.append(e, 0.0), np.append(e, 0.0), np.append(f, 0.0), nf
        )
        assert a == pytest.approx(b)


class TestPartitionIncremental:
    @pytest.mark.parametrize("directed", [False, True])
    def test_initial_codelength_matches_recompute(self, directed):
        p = Partition(_net(directed))
        assert p.codelength == pytest.approx(p.codelength_recomputed())

    @pytest.mark.parametrize("directed", [False, True])
    def test_delta_matches_recompute_exhaustive(self, directed):
        """For every (vertex, neighbour-module) pair, delta_move must equal
        the recomputed difference."""
        net = _net(directed)
        p = Partition(net)
        for v in range(net.num_vertices):
            out_to, in_from = _pair_maps(net, p, v)
            if not directed:
                in_from = out_to
            cur = int(p.module[v])
            for m in set(out_to) | set(in_from):
                if m == cur:
                    continue
                dl = p.delta_move(
                    v, m,
                    out_to.get(cur, 0.0), in_from.get(cur, 0.0),
                    out_to.get(m, 0.0), in_from.get(m, 0.0),
                )
                before = p.codelength_recomputed()
                p.apply_move(
                    v, m,
                    out_to.get(cur, 0.0), in_from.get(cur, 0.0),
                    out_to.get(m, 0.0), in_from.get(m, 0.0),
                )
                after = p.codelength_recomputed()
                assert dl == pytest.approx(after - before, abs=1e-10)
                assert p.codelength == pytest.approx(after, abs=1e-10)
                # move back
                out_to2, in_from2 = _pair_maps(net, p, v)
                if not directed:
                    in_from2 = out_to2
                p.apply_move(
                    v, cur,
                    out_to2.get(m, 0.0), in_from2.get(m, 0.0),
                    out_to2.get(cur, 0.0), in_from2.get(cur, 0.0),
                )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_move_sequences_stay_consistent(self, seed):
        """After any sequence of random legal moves, the incremental
        codelength equals the from-scratch recomputation."""
        rng = np.random.default_rng(seed)
        g, _ = planted_partition(3, 8, 0.5, 0.1, seed=seed % 100)
        net = FlowNetwork.from_graph(g)
        p = Partition(net)
        for _ in range(30):
            v = int(rng.integers(net.num_vertices))
            out_to, _ = _pair_maps(net, p, v)
            in_from = out_to
            cur = int(p.module[v])
            cands = [m for m in out_to if m != cur]
            if not cands:
                continue
            m = cands[int(rng.integers(len(cands)))]
            p.apply_move(
                v, m,
                out_to.get(cur, 0.0), in_from.get(cur, 0.0),
                out_to.get(m, 0.0), in_from.get(m, 0.0),
            )
        assert p.codelength == pytest.approx(p.codelength_recomputed(), abs=1e-9)
        # module bookkeeping stays consistent
        assert p.num_modules == len(np.unique(p.module))
        sizes = np.bincount(p.module, minlength=net.num_vertices)
        assert np.array_equal(sizes, p.module_size)

    def test_delta_of_staying_is_zero(self):
        p = Partition(_net())
        assert p.delta_move(0, 0, 0.0, 0.0, 0.0, 0.0) == 0.0

    def test_dense_assignment(self):
        net = _net()
        p = Partition(net)
        dense, k = p.dense_assignment()
        assert k == net.num_vertices
        assert np.array_equal(np.sort(np.unique(dense)), np.arange(k))
