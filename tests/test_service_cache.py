"""Property suite for the result cache's content addressing, plus
chaos resilience of the service itself.

:func:`repro.service.cache.graph_digest` claims to hash the *canonical
arc multiset* — two graphs digest equal iff they describe the same
network.  Hypothesis drives both directions over adversarial edge lists
(duplicates, self-loops, isolated vertices — ``tests/strategies``):

* invariant under edge-list permutation and under rewriting an edge as
  duplicate half-weight copies (the canonicalization direction);
* distinct under weight scaling and vertex-count changes (the
  collision direction — a digest that ignored weights would serve the
  wrong partition from the cache).

:func:`repro.service.cache.cache_key` must split the same way on
parameters: result-determining fields (engine/workers/seed/tau/caps/
chunk) change the key, serving fields (priority/deadline/label/cache
opt-out) never do.

The chaos half injects ``kill`` faults (``repro.core.faults``) through
the *service* path and asserts the supervised recovery that PR 4 proved
for single runs still holds across jobs: the faulted job completes
bit-identically, skips the cache, and the service runs the next job on
the same warm pool.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.graph.generators import planted_partition
from repro.service import JobService, JobSpec, ResultCache
from repro.service.cache import CacheEntry, cache_key, graph_digest

from tests.strategies import edge_lists, seeds

NUM_VERTICES = 10  # fixed so permutations cannot change the vertex set


def _graph_from(edges, directed=False):
    return from_edges(edges, num_vertices=NUM_VERTICES, directed=directed)


# ---------------------------------------------------------------------------
# graph digest: invariance direction


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists(max_vertex=NUM_VERTICES - 1), shuffle=seeds,
       directed=st.booleans())
def test_digest_invariant_under_edge_permutation(edges, shuffle, directed):
    g = _graph_from(edges, directed)
    rng = np.random.default_rng(shuffle)
    permuted = [edges[i] for i in rng.permutation(len(edges))]
    assert graph_digest(_graph_from(permuted, directed)) == graph_digest(g)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists(max_vertex=NUM_VERTICES - 1), pick=seeds)
def test_digest_invariant_under_duplicate_edge_spelling(edges, pick):
    """(u, v, w) and two copies of (u, v, w/2) describe the same
    multiset — duplicate arcs coalesce by summing weights."""
    g = _graph_from(edges)
    u, v = edges[pick % len(edges)]
    rewritten = list(edges) + [(u, v, 0.5), (u, v, 0.5)]
    reference = list(edges) + [(u, v, 1.0)]
    assert graph_digest(_graph_from(rewritten)) == graph_digest(
        _graph_from(reference)
    )
    # and the rewrite genuinely changed the network vs the original
    assert graph_digest(_graph_from(rewritten)) != graph_digest(g)


# ---------------------------------------------------------------------------
# graph digest: distinctness direction


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists(max_vertex=NUM_VERTICES - 1))
def test_digest_distinct_under_weight_scaling(edges):
    g = _graph_from(edges)
    doubled = [(u, v, 2.0) for u, v in edges]
    assert graph_digest(_graph_from(doubled)) != graph_digest(g)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists(max_vertex=NUM_VERTICES - 1))
def test_digest_distinct_under_isolated_vertex_count(edges):
    g = _graph_from(edges)
    grown = from_edges(edges, num_vertices=NUM_VERTICES + 1)
    assert graph_digest(grown) != graph_digest(g)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists(max_vertex=NUM_VERTICES - 1, min_size=2))
def test_digest_distinct_under_directedness(edges):
    und = _graph_from(edges, directed=False)
    dire = _graph_from(edges, directed=True)
    assert graph_digest(und) != graph_digest(dire)


# ---------------------------------------------------------------------------
# cache keys: result-determining fields split, serving fields don't


def _spec(**kw):
    g, _ = planted_partition(3, 10, 0.5, 0.05, seed=2)
    base = dict(graph=g, engine="parallel", workers=2, seed=0)
    base.update(kw)
    return JobSpec(**base)


@pytest.mark.parametrize(
    "change",
    [
        {"engine": "multicore"},
        {"engine": "vectorized", "workers": 1},
        {"workers": 3},
        {"seed": 1},
        {"tau": 0.2},
        {"max_levels": 3},
        {"max_passes_per_level": 4},
        {"chunk": 8},
    ],
    ids=lambda c: "+".join(c),
)
def test_cache_key_splits_on_result_determining_params(change):
    assert cache_key(_spec(**change)) != cache_key(_spec())


@pytest.mark.parametrize(
    "change",
    [
        {"priority": 7},
        {"deadline": 60.0},
        {"label": "renamed"},
        {"use_cache": False},
        {"worker_timeout": 5.0},
    ],
    ids=lambda c: "+".join(c),
)
def test_cache_key_ignores_serving_params(change):
    assert cache_key(_spec(**change)) == cache_key(_spec())


@settings(max_examples=30, deadline=None)
@given(seed_a=st.integers(0, 50), seed_b=st.integers(0, 50))
def test_cache_key_equality_tracks_seed_equality(seed_a, seed_b):
    same = cache_key(_spec(seed=seed_a)) == cache_key(_spec(seed=seed_b))
    assert same == (seed_a == seed_b)


# ---------------------------------------------------------------------------
# ResultCache unit layer: LRU bound, copy isolation, disabled mode


def _entry(tag):
    return CacheEntry(modules=np.array([tag, tag], dtype=np.int64),
                      num_modules=1, codelength=float(tag), levels=1)


def test_cache_lru_evicts_least_recently_used():
    c = ResultCache(max_entries=2)
    c.put("a", _entry(0))
    c.put("b", _entry(1))
    assert c.get("a") is not None  # refreshes 'a'
    c.put("c", _entry(2))          # evicts 'b', the LRU tail
    assert c.get("b") is None
    assert c.get("a") is not None and c.get("c") is not None
    assert c.stats()["evictions"] == 1
    assert len(c) == 2


def test_cache_copies_arrays_both_ways():
    c = ResultCache(max_entries=2)
    arr = np.array([1, 2, 3], dtype=np.int64)
    c.put("k", CacheEntry(modules=arr, num_modules=3, codelength=1.0,
                          levels=1))
    arr[0] = 99  # caller mutates after insert: cache must not see it
    out = c.get("k")
    assert out.modules[0] == 1
    out.modules[0] = 77  # reader mutates the hit: cache must not see it
    assert c.get("k").modules[0] == 1


def test_cache_disabled_stores_and_returns_nothing():
    c = ResultCache(max_entries=0)
    assert not c.enabled
    c.put("k", _entry(1))
    assert c.get("k") is None
    assert len(c) == 0
    assert c.stats()["misses"] == 1


# ---------------------------------------------------------------------------
# concurrency: the gateway hammers shard caches from worker threads
# while stats readers poll from the event loop


def test_cache_concurrent_hammer_keeps_invariants():
    """8 threads × mixed get/put over a tight key space, against a
    capacity-4 LRU.  At every instant (checked live by reader threads
    and at the end): size never exceeds capacity, every served hit is a
    self-consistent entry (modules payload matches its codelength tag),
    and the hit/miss/eviction counters reconcile exactly with the
    operations performed."""
    import threading

    cache = ResultCache(max_entries=4)
    keys = [f"k{i}" for i in range(10)]
    per_thread_ops = 400
    num_threads = 8
    errors: list[str] = []
    local_counts = []  # per-thread (gets, puts)

    def worker(tid: int) -> None:
        rng = np.random.default_rng(tid)
        gets = puts = 0
        for i in range(per_thread_ops):
            key = keys[int(rng.integers(0, len(keys)))]
            tag = int(key[1:])
            if rng.random() < 0.5:
                cache.put(key, _entry(tag))
                puts += 1
            else:
                out = cache.get(key)
                gets += 1
                if out is not None:
                    # a hit must be internally consistent, never a
                    # half-written or cross-key entry
                    if (out.codelength != float(tag)
                            or out.modules.tolist() != [tag, tag]):
                        errors.append(f"torn read for {key}: "
                                      f"{out.codelength}, {out.modules}")
            if i % 50 == 0 and len(cache) > cache.max_entries:
                errors.append(f"size {len(cache)} exceeds capacity")
        local_counts.append((gets, puts))

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, errors[:5]
    stats = cache.stats()
    total_gets = sum(g for g, _ in local_counts)
    total_puts = sum(p for _, p in local_counts)
    assert total_gets + total_puts == num_threads * per_thread_ops
    # counters reconcile exactly: every get was a hit or a miss — a
    # lost update under a race would break this equality
    assert stats["hits"] + stats["misses"] == total_gets
    assert len(cache) <= cache.max_entries
    assert stats["entries"] == len(cache)


def test_cache_concurrent_evictions_reconcile_exactly():
    """Pure put storm from threads: live entries + evictions == puts
    is exact under the lock (it was a data race before)."""
    import threading

    cache = ResultCache(max_entries=3)
    puts_per_thread = 300
    num_threads = 6

    def worker(tid: int) -> None:
        for i in range(puts_per_thread):
            cache.put(f"t{tid}-{i}", _entry(tid))

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = cache.stats()
    total_puts = num_threads * puts_per_thread
    # every put either still lives or was evicted — nothing lost or
    # double-counted (keys are unique, so no same-key overwrites)
    assert stats["entries"] + stats["evictions"] == total_puts
    assert stats["entries"] <= 3


# ---------------------------------------------------------------------------
# chaos: injected kill faults through the service path


def _planted():
    g, _ = planted_partition(4, 20, 0.45, 0.02, seed=1)
    return g


def test_killed_worker_mid_job_recovers_bit_identically():
    g = _planted()
    with JobService(cache_entries=8) as svc:
        (chaos,) = svc.run_batch(
            [JobSpec(graph=g, workers=2, seed=0,
                     fault_plan="kill@w0:b1", worker_timeout=5.0)]
        )
        assert chaos.ok, chaos.error
        assert chaos.respawns >= 1  # the fault really fired
        # chaos jobs never populate the cache
        assert len(svc.cache) == 0
        clean = svc.run_batch([JobSpec(graph=g, workers=2, seed=0)])[0]
        assert clean.ok and clean.warm_pool
        assert not clean.cache_hit  # nothing was cached to hit
    assert np.array_equal(chaos.modules, clean.modules)
    assert chaos.codelength == clean.codelength


def test_service_survives_repeated_kill_faults_across_jobs():
    g = _planted()
    with JobService(cache_entries=0) as svc:
        specs = []
        for seed in range(3):
            specs.append(JobSpec(graph=g, workers=2, seed=seed,
                                 fault_plan=f"kill@w{seed % 2}:b1",
                                 worker_timeout=5.0, label=f"chaos{seed}"))
            specs.append(JobSpec(graph=g, workers=2, seed=seed,
                                 label=f"clean{seed}"))
        results = svc.run_batch(specs)
        assert all(r.ok for r in results), [
            (r.label, r.error) for r in results if not r.ok
        ]
        by_label = {r.label: r for r in results}
        for seed in range(3):
            assert np.array_equal(
                by_label[f"chaos{seed}"].modules,
                by_label[f"clean{seed}"].modules,
            ), f"fault at seed {seed} perturbed the partition"
        # one cold spawn total: every recovery kept the pool alive
        assert svc.pools.stats()["cold_spawns"] == 1


def test_bad_fault_plan_is_rejected_not_raised():
    g = _planted()
    with JobService() as svc:
        jid = svc.submit(JobSpec(graph=g, workers=2,
                                 fault_plan="explode@w0:b1"))
        assert svc.results[jid].status == "rejected"
        assert "invalid job spec" in svc.results[jid].error
