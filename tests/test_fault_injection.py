"""Chaos suite: injected worker faults must recover deterministically.

The supervisor in :mod:`repro.core.parallel` promises that a worker
which dies, hangs, straggles, or corrupts its reply is respawned and
its barrier replayed **without changing the result**: the recovered
partition and codelength are bit-identical to the fault-free
``parallel(workers=k)`` run at the same seed.

This file proves that promise exhaustively:

* ``kill`` and ``hang`` at **every barrier index** of every conformance
  graph family (undirected / directed / weighted / pathological);
* ``corrupt`` and ``slow`` at representative barriers, including a
  deadline shorter than the straggle (a false-positive stall detection
  must be just as harmless as a true one);
* multi-fault plans hitting both workers;
* plus the unit layer: :class:`repro.core.faults.FaultPlan` parsing /
  printing round-trips, seeded :meth:`FaultPlan.random` determinism,
  and the injector's one-shot arming semantics.

Every parallel-engine test here spawns real worker processes; the graph
families are small (~80 vertices) so the grid stays fast.  Reproduce
any cell locally with the CLI::

    python -m repro run --dataset amazon --engine parallel --workers 2 \
        --fault-plan "kill@w0:b1" --worker-timeout 5
"""

import numpy as np
import pytest

from repro.core.faults import (
    FAULT_KINDS,
    SLOW_SECONDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.core.parallel import run_infomap_parallel

from tests.test_engine_conformance import FAMILIES

WORKERS = 2
SEED = 3
#: reply deadline for chaos runs: tiny graphs answer in milliseconds, so
#: this is a wide margin — and a slow-host false positive only costs a
#: respawn, never correctness (that's the property under test)
TIMEOUT = 0.4

_BASELINES: dict[str, tuple] = {}


def _baseline(family):
    """Graph, fault-free run, and its barrier count (cached per family)."""
    if family not in _BASELINES:
        g, _ = FAMILIES[family](SEED)
        r = run_infomap_parallel(g, workers=WORKERS, seed=SEED)
        _BASELINES[family] = (g, r, sum(p.rounds for p in r.passes))
    return _BASELINES[family]


def _assert_recovered(r, base, cell):
    __tracebackhide__ = True
    assert np.array_equal(r.modules, base.modules), cell
    assert r.codelength == base.codelength, cell
    assert r.num_modules == base.num_modules, cell
    assert r.levels == base.levels, cell


# ---------------------------------------------------------------------------
# the injection grid: kill/hang at every barrier of every family


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_kill_recovers_bit_identical_at_every_barrier(family):
    g, base, barriers = _baseline(family)
    assert barriers >= 2, "family too trivial to exercise recovery"
    for barrier in range(barriers):
        plan = FaultPlan(
            (FaultSpec("kill", worker=barrier % WORKERS, barrier=barrier),)
        )
        r = run_infomap_parallel(
            g, workers=WORKERS, seed=SEED,
            fault_plan=plan, worker_timeout=TIMEOUT,
        )
        _assert_recovered(r, base, (family, "kill", barrier))
        fired = sum(r.faults_injected.values())
        # a barrier where that worker's shard was empty leaves the fault
        # unfired — then (and only then) no respawn is expected
        assert r.respawns >= fired, (family, barrier, r.faults_detected)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_hang_recovers_bit_identical_at_every_barrier(family):
    g, base, barriers = _baseline(family)
    for barrier in range(barriers):
        plan = FaultPlan(
            (FaultSpec("hang", worker=barrier % WORKERS, barrier=barrier),)
        )
        r = run_infomap_parallel(
            g, workers=WORKERS, seed=SEED,
            fault_plan=plan, worker_timeout=TIMEOUT,
        )
        _assert_recovered(r, base, (family, "hang", barrier))
        assert r.respawns >= sum(r.faults_injected.values())


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("kind", ["corrupt", "slow"])
def test_corrupt_and_slow_recover_bit_identical(kind, family):
    g, base, barriers = _baseline(family)
    for barrier in (0, barriers // 2):
        plan = FaultPlan(
            (FaultSpec(kind, worker=barrier % WORKERS, barrier=barrier),)
        )
        # deadline wider than the straggle: slow must be *tolerated*
        r = run_infomap_parallel(
            g, workers=WORKERS, seed=SEED,
            fault_plan=plan, worker_timeout=SLOW_SECONDS * 4,
        )
        _assert_recovered(r, base, (family, kind, barrier))
        if kind == "corrupt":
            assert r.respawns >= sum(r.faults_injected.values())
        else:
            assert r.respawns == 0, "tolerated straggler must not respawn"


def test_slow_killed_by_tight_deadline_still_bit_identical():
    # deadline *shorter* than the straggle: the supervisor treats the
    # straggler as hung and respawns it — a false-positive stall
    # detection must be exactly as harmless as a true one
    g, base, _ = _baseline("undirected")
    r = run_infomap_parallel(
        g, workers=WORKERS, seed=SEED,
        fault_plan=FaultPlan((FaultSpec("slow", worker=0, barrier=0),)),
        worker_timeout=SLOW_SECONDS / 2,
    )
    _assert_recovered(r, base, ("undirected", "slow+tight", 0))
    assert r.respawns >= 1
    assert r.faults_detected.get("stalled", 0) >= 1


def test_multi_fault_plan_hits_both_workers():
    g, base, barriers = _baseline("undirected")
    plan = FaultPlan((
        FaultSpec("kill", worker=0, barrier=0),
        FaultSpec("kill", worker=1, barrier=1),
        FaultSpec("corrupt", worker=0, barrier=min(2, barriers - 1)),
    ))
    r = run_infomap_parallel(
        g, workers=WORKERS, seed=SEED,
        fault_plan=plan, worker_timeout=TIMEOUT,
    )
    _assert_recovered(r, base, ("undirected", "multi", plan))
    assert sum(r.faults_injected.values()) == 3
    assert r.respawns == 3


def test_kill_replay_bit_identical_under_bounded_accumulator():
    # kill-and-replay with accumulator="bounded": the respawned worker
    # is rebound mid-run, and the recovery rebind must carry the pool's
    # accumulation strategy — a respawn that silently fell back to
    # reduceat would still pass (the strategies are bit-identical), so
    # also check the bounded table actually saw traffic
    from repro.obs import metrics as obs_metrics

    g, base, barriers = _baseline("undirected")
    with obs_metrics.scoped_registry() as reg:
        bounded = run_infomap_parallel(
            g, workers=WORKERS, seed=SEED, accumulator="bounded"
        )
        hits = [m for m in reg.snapshot()["metrics"]
                if m["name"] == "accum.bounded.hits"]
    _assert_recovered(bounded, base, ("undirected", "bounded", "clean"))
    assert hits and hits[0]["value"] > 0
    for barrier in (0, barriers // 2):
        r = run_infomap_parallel(
            g, workers=WORKERS, seed=SEED, accumulator="bounded",
            fault_plan=FaultPlan(
                (FaultSpec("kill", worker=barrier % WORKERS,
                           barrier=barrier),)
            ),
            worker_timeout=TIMEOUT,
        )
        _assert_recovered(r, base, ("undirected", "bounded+kill", barrier))


def test_fault_on_single_worker_pool():
    # workers=1: the whole shard is one worker; killing it must still
    # recover (there is no healthy peer to hide behind)
    g, _ = FAMILIES["undirected"](SEED)
    base = run_infomap_parallel(g, workers=1, seed=SEED)
    r = run_infomap_parallel(
        g, workers=1, seed=SEED,
        fault_plan="kill@w0:b0", worker_timeout=TIMEOUT,
    )
    _assert_recovered(r, base, ("undirected", "kill", "1-worker"))
    assert r.respawns == 1


def test_unreached_barrier_leaves_fault_unfired():
    g, base, barriers = _baseline("undirected")
    r = run_infomap_parallel(
        g, workers=WORKERS, seed=SEED,
        fault_plan=FaultPlan(
            (FaultSpec("kill", worker=0, barrier=barriers + 100),)
        ),
        worker_timeout=TIMEOUT,
    )
    _assert_recovered(r, base, ("undirected", "unreached", barriers + 100))
    assert r.respawns == 0
    assert sum(r.faults_injected.values()) == 0


def test_level_scoped_fault_only_fires_on_that_level():
    # barrier 0 is always level 0, so scoping the same barrier to level 1
    # must leave the fault unfired
    g, base, _ = _baseline("undirected")
    r = run_infomap_parallel(
        g, workers=WORKERS, seed=SEED,
        fault_plan=FaultPlan(
            (FaultSpec("kill", worker=0, barrier=0, level=1),)
        ),
        worker_timeout=TIMEOUT,
    )
    _assert_recovered(r, base, ("undirected", "level-scoped", 0))
    assert sum(r.faults_injected.values()) == 0


def test_string_plan_accepted_by_entry_points():
    from repro.core.infomap import run_infomap

    g, base, _ = _baseline("undirected")
    r = run_infomap(
        g, engine="parallel", workers=WORKERS, shuffle_seed=SEED,
        fault_plan="kill@w1:b1", worker_timeout=TIMEOUT,
    )
    _assert_recovered(r, base, ("undirected", "string-plan", 1))
    with pytest.raises(ValueError, match="parallel"):
        run_infomap(g, engine="vectorized", fault_plan="kill@w0:b0")
    with pytest.raises(ValueError, match="parallel"):
        run_infomap(g, engine="sequential", worker_timeout=1.0)


def test_bad_worker_timeout_rejected():
    g, _ = FAMILIES["undirected"](SEED)
    with pytest.raises(ValueError, match="worker_timeout"):
        run_infomap_parallel(g, workers=2, worker_timeout=0.0)


# ---------------------------------------------------------------------------
# unit layer: FaultPlan / FaultInjector semantics (no processes involved)


def test_plan_parse_roundtrip():
    plan = FaultPlan.parse("kill@w0:b1,hang@w1:b3:l2, slow@w2:b0")
    assert plan.specs == (
        FaultSpec("kill", 0, 1),
        FaultSpec("hang", 1, 3, level=2),
        FaultSpec("slow", 2, 0),
    )
    assert FaultPlan.parse(str(plan)) == plan


@pytest.mark.parametrize("text", [
    "", "explode@w0:b1", "kill@0:1", "kill@w0", "kill@w0:b-1",
    "random:", "random:x", "random:1:2:3",
])
def test_plan_parse_rejects_bad_spellings(text):
    with pytest.raises(ValueError):
        FaultPlan.parse(text)


def test_bad_spec_values_rejected():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec("explode", 0, 0)
    with pytest.raises(ValueError):
        FaultSpec("kill", -1, 0)
    with pytest.raises(ValueError):
        FaultSpec("kill", 0, 0, level=-2)


def test_random_plan_is_seed_deterministic():
    a = FaultPlan.random(seed=11, workers=3, faults=4)
    b = FaultPlan.random(seed=11, workers=3, faults=4)
    assert a == b
    assert a.seed == 11
    assert len(a) == 4
    assert len({(s.worker, s.barrier) for s in a.specs}) == 4  # distinct cells
    for s in a.specs:
        assert s.kind in FAULT_KINDS
        assert 0 <= s.worker < 3
    # the random:SEED:N CLI spelling resolves to the same plan
    assert FaultPlan.parse("random:11:4", workers=3) == a


def test_injector_is_one_shot_and_level_aware():
    plan = FaultPlan((
        FaultSpec("kill", 0, 2),
        FaultSpec("hang", 1, 2, level=1),
    ))
    inj = FaultInjector(plan)
    assert inj.pop(0, 1, 0) is None          # wrong barrier
    assert inj.pop(1, 2, 0) is None          # level-scoped, wrong level
    assert inj.pop(0, 2, 0).kind == "kill"   # fires once...
    assert inj.pop(0, 2, 0) is None          # ...and never again
    assert inj.pop(1, 2, 1).kind == "hang"   # level matches now
    assert inj.injected == {"kill": 1, "hang": 1}
    assert inj.total_injected == 2


# ---------------------------------------------------------------------------
# chunked-commit-round protocol: order windows, replay fallback, dirty skip


def test_kill_mid_pass_with_chunked_rounds_bit_identical():
    """A respawned worker loses its pass orders mid-pass.

    With ``chunk`` small enough for several rounds per pass, a kill at
    an inner round forces the recovery path onto explicit-shard
    (``roundv``) messages for the rest of that pass while the other
    worker keeps using ``[lo, hi)`` windows — the mixed protocol must
    still commit the identical stream.
    """
    g, _ = FAMILIES["undirected"](SEED)
    base = run_infomap_parallel(g, workers=WORKERS, seed=SEED, chunk=7)
    barriers = sum(p.rounds for p in base.passes)
    assert barriers >= 3, "need a multi-round schedule for this test"
    for b in range(1, barriers, 2):  # every other inner barrier
        r = run_infomap_parallel(
            g, workers=WORKERS, seed=SEED, chunk=7,
            fault_plan=FaultPlan((FaultSpec("kill", worker=0, barrier=b),)),
            worker_timeout=TIMEOUT,
        )
        _assert_recovered(r, base, ("chunked", "kill", b))
        assert r.respawns >= 1


def test_round_accounting_and_dirty_state_skip():
    """``rounds`` counts barriers; ``state_writes`` stays well below it.

    The dirty-flag skip means the O(n) snapshot rewrite happens only on
    a fresh arena or after an accepted commit — a multi-round pass with
    rejected/empty rounds must not pay it per round.
    """
    g, _ = FAMILIES["undirected"](SEED)
    r = run_infomap_parallel(g, workers=WORKERS, seed=SEED, chunk=7)
    assert r.rounds == sum(p.rounds for p in r.passes)
    assert 1 <= r.state_writes <= r.rounds
    # chunked schedules always have idle rounds (convergence passes and
    # rejected commits); the skip must actually fire
    assert r.state_writes < r.rounds
