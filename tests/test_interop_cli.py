"""Tests for networkx interop and the CLI."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.cli import build_parser, main
from repro.graph.build import from_edges
from repro.graph.generators import ring_of_cliques
from repro.graph.interop import from_networkx, to_networkx


class TestFromNetworkx:
    def test_round_trip_undirected(self):
        g, _ = ring_of_cliques(3, 4)
        nxg = to_networkx(g)
        g2, order = from_networkx(nxg)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        assert not g2.directed

    def test_weights_preserved(self):
        nxg = networkx.Graph()
        nxg.add_edge("a", "b", weight=2.5)
        g, order = from_networkx(nxg)
        assert g.total_weight == pytest.approx(5.0)  # both arcs
        assert set(order) == {"a", "b"}

    def test_directed(self):
        nxg = networkx.DiGraph()
        nxg.add_edge(0, 1)
        nxg.add_edge(1, 0)
        g, _ = from_networkx(nxg)
        assert g.directed and g.num_arcs == 2

    def test_arbitrary_node_labels(self):
        nxg = networkx.Graph()
        nxg.add_edge("protein-A", "protein-B")
        nxg.add_edge("protein-B", (1, 2))
        g, order = from_networkx(nxg)
        assert g.num_vertices == 3
        assert "protein-A" in order

    def test_ignore_weight_attr(self):
        nxg = networkx.Graph()
        nxg.add_edge(0, 1, weight=9.0)
        g, _ = from_networkx(nxg, weight=None)
        _, w = g.out_neighbors(0)
        assert w[0] == 1.0

    def test_end_to_end_clustering(self):
        from repro.core.infomap import run_infomap

        nxg = networkx.Graph()
        # two triangles joined by a bridge
        nxg.add_edges_from([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        g, _ = from_networkx(nxg)
        r = run_infomap(g)
        assert r.num_modules == 2


class TestToNetworkx:
    def test_module_annotation(self):
        g, truth = ring_of_cliques(2, 3)
        nxg = to_networkx(g, modules=truth)
        assert nxg.nodes[0]["module"] == 0
        assert nxg.nodes[5]["module"] == 1

    def test_module_length_check(self):
        g, _ = ring_of_cliques(2, 3)
        with pytest.raises(ValueError):
            to_networkx(g, modules=np.array([0]))

    def test_directed_conversion(self):
        g = from_edges([(0, 1)], directed=True, num_vertices=2)
        nxg = to_networkx(g)
        assert nxg.is_directed()
        assert nxg.has_edge(0, 1) and not nxg.has_edge(1, 0)


class TestCLI:
    def test_parser_builds(self):
        p = build_parser()
        args = p.parse_args(["run", "--dataset", "amazon", "--backend", "asa"])
        assert args.dataset == "amazon"

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "amazon" in out and "orkut" in out

    def test_run_on_edge_list(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        g, _ = ring_of_cliques(3, 4)
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        assert main(["run", "--edge-list", str(path), "--backend", "softhash"]) == 0
        out = capsys.readouterr().out
        assert "3 modules" in out
        assert "Hash-op time" in out

    def test_run_multicore(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        g, _ = ring_of_cliques(4, 5)
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        assert main(
            ["run", "--edge-list", str(path), "--backend", "asa", "--cores", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 simulated cores" in out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Machine configurations" in out

    def test_quality_command(self, capsys):
        assert main(["quality", "--mu", "0.1", "--n", "400"]) == 0
        out = capsys.readouterr().out
        assert "Infomap" in out

    def test_run_engine_multicore_workers(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        g, _ = ring_of_cliques(4, 5)
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        assert main(
            ["run", "--edge-list", str(path), "--engine", "multicore",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 simulated cores" in out

    def test_run_engine_parallel_workers(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        g, _ = ring_of_cliques(4, 5)
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        assert main(
            ["run", "--edge-list", str(path), "--engine", "parallel",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        assert "Module sizes" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--dataset", "amazon", "--backend", "cuckoo"])

    def test_run_surrogate_parallel(self, capsys, tmp_path, monkeypatch):
        # shrink the recipe so the CLI path stays test-sized
        import repro.graph.stream as stream

        monkeypatch.setitem(
            stream.BIGSCALE_RECIPES, "rmat_1m",
            {"kind": "rmat", "scale": 7, "edge_factor": 6},
        )
        ledger = tmp_path / "runs.jsonl"
        assert main(
            ["run", "--surrogate", "rmat_1m", "--engine", "parallel",
             "--workers", "2", "--seed", "3", "--ledger", str(ledger)]
        ) == 0
        out = capsys.readouterr().out
        assert "rmat_1m" in out and "2 workers" in out
        import json

        rec = json.loads(ledger.read_text().splitlines()[0])
        # the ledger reuses the digest computed during the stream
        assert rec["config"]["graph"].startswith("sha256:") or len(
            rec["config"]["graph"]) >= 32
        assert rec["perf"]["sweep_vertices_per_s"] > 0
        # arena released after the run
        from repro.core import arena

        assert arena.live_segments(arena.segment_prefix()) == []

    def test_run_validates_before_any_graph_is_built(self, monkeypatch):
        """Usage errors must fire before dataset load / surrogate stream.

        Regression guard: a bad --engine/--workers combination on a
        --surrogate run used to be worth multi-seconds of generation
        before argparse rejected it.  Booby-trap every graph source and
        assert the error wins.
        """
        import repro.cli as cli
        import repro.graph.stream as stream

        def boom(*a, **k):  # pragma: no cover - must never run
            raise AssertionError("graph source touched before validation")

        monkeypatch.setattr(cli, "load_dataset", boom)
        monkeypatch.setattr(cli, "read_edge_list", boom)
        monkeypatch.setattr(stream, "stream_recipe", boom)
        for argv in (
            ["run", "--surrogate", "rmat_1m", "--engine", "parallel",
             "--workers", "0"],
            ["run", "--surrogate", "rmat_1m", "--workers", "2"],
            ["run", "--surrogate", "rmat_1m", "--seed", "-1"],
            ["run", "--dataset", "amazon", "--seed", "5"],
            ["run", "--surrogate", "rmat_1m", "--directed"],
            ["run", "--dataset", "amazon", "--engine", "vectorized",
             "--fault-plan", "kill@w0:b1"],
        ):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            assert exc.value.code == 2

    @pytest.mark.parametrize("argv", [
        # --workers needs a multi-rank engine
        ["run", "--dataset", "amazon", "--workers", "2"],
        ["run", "--dataset", "amazon", "--engine", "vectorized",
         "--workers", "2"],
        # --cores is the legacy sequential-engine spelling only
        ["run", "--dataset", "amazon", "--engine", "parallel",
         "--cores", "2"],
        ["run", "--dataset", "amazon", "--engine", "multicore",
         "--cores", "2"],
        # mutually exclusive / out of range
        ["run", "--dataset", "amazon", "--engine", "multicore",
         "--workers", "2", "--cores", "2"],
        ["run", "--dataset", "amazon", "--engine", "parallel",
         "--workers", "0"],
        ["run", "--dataset", "amazon", "--cores", "0"],
    ])
    def test_invalid_engine_worker_combos_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "--workers" in err or "--cores" in err


class TestCLIObservability:
    def _ring_path(self, tmp_path):
        from repro.graph.io import write_edge_list

        g, _ = ring_of_cliques(3, 4)
        path = tmp_path / "ring.txt"
        write_edge_list(g, path)
        return path

    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "run", "--edge-list", str(self._ring_path(tmp_path)),
            "--backend", "asa",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out

        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"infomap.run", "findbest"} <= {e["name"] for e in events}

        snap = json.loads(metrics.read_text())
        assert snap["schema"] == "repro.metrics/v1"
        names = {m["name"] for m in snap["metrics"]}
        assert {"infomap.passes", "codelength.bits",
                "kernel.wall_seconds"} <= names

    def test_run_without_flags_leaves_obs_disabled(self, tmp_path, capsys):
        from repro.obs import metrics as obs_metrics
        from repro.obs import spans as obs_spans

        assert main([
            "run", "--edge-list", str(self._ring_path(tmp_path)),
            "--backend", "softhash",
        ]) == 0
        capsys.readouterr()
        assert not obs_spans.is_enabled()
        assert not obs_metrics.is_enabled()
        assert obs_spans.events() == []

    def test_trace_view_renders_table(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        assert main([
            "run", "--edge-list", str(self._ring_path(tmp_path)),
            "--backend", "softhash", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace-view", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Span self-time breakdown" in out
        assert "findbest" in out

    def test_trace_view_rejects_empty_trace(self, tmp_path, capsys):
        import json

        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace-view", str(empty)]) == 1

    def test_experiment_accepts_metrics_out(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "exp-metrics.json"
        assert main([
            "experiment", "table2", "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "Machine configurations" in out
        snap = json.loads(metrics.read_text())
        assert snap["schema"] == "repro.metrics/v1"
        assert isinstance(snap["metrics"], list)

    def test_run_log_level_flag(self, tmp_path, capsys):
        # --log-level must parse and not disturb the run
        assert main([
            "run", "--edge-list", str(self._ring_path(tmp_path)),
            "--backend", "softhash", "--log-level", "debug",
        ]) == 0
        assert "modules" in capsys.readouterr().out


class TestCLIExport:
    def test_export_writes_artifacts(self, tmp_path, capsys):
        assert main([
            "export", "--out", str(tmp_path), "--names", "table2_machines",
        ]) == 0
        assert (tmp_path / "table2_machines.json").exists()
        assert (tmp_path / "table2_machines.csv").exists()
