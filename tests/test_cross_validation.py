"""Cross-validation against networkx reference implementations.

Independent implementations of PageRank, modularity, and Louvain exist in
networkx; agreeing with them pins our substrates to community-standard
semantics rather than self-consistency alone.
"""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.baselines.louvain import louvain
from repro.baselines.modularity import modularity
from repro.core.flow import pagerank
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.graph.interop import to_networkx


class TestPageRankAgainstNetworkx:
    def _compare(self, graph, tau=0.15):
        ours, _ = pagerank(graph, tau=tau)
        nxg = to_networkx(graph)
        theirs = networkx.pagerank(nxg, alpha=1 - tau, tol=1e-12, max_iter=500,
                                   weight="weight")
        theirs_arr = np.array([theirs[v] for v in range(graph.num_vertices)])
        assert np.allclose(ours, theirs_arr, atol=1e-8)

    def test_directed_cycle_with_chord(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (0, 2), (2, 3), (3, 0)],
            directed=True, num_vertices=4,
        )
        self._compare(g)

    def test_directed_with_dangling(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], directed=True, num_vertices=3)
        self._compare(g)

    def test_weighted_directed(self):
        g = from_edges(
            [(0, 1, 10.0), (1, 0, 1.0), (1, 2, 5.0), (2, 0, 2.0)],
            directed=True, num_vertices=3,
        )
        self._compare(g)

    def test_different_teleportation(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)],
            directed=True, num_vertices=4,
        )
        self._compare(g, tau=0.3)


class TestModularityAgainstNetworkx:
    def test_matches_on_ring_of_cliques(self):
        g, truth = ring_of_cliques(4, 5)
        nxg = to_networkx(g)
        communities = [
            set(np.flatnonzero(truth == c).tolist()) for c in range(4)
        ]
        theirs = networkx.algorithms.community.modularity(
            nxg, communities, weight="weight"
        )
        assert modularity(g, truth) == pytest.approx(theirs, abs=1e-10)

    def test_matches_on_weighted_graph(self):
        g = from_edges(
            [(0, 1, 2.0), (1, 2, 1.0), (0, 2, 0.5), (3, 4, 3.0), (2, 3, 0.2)],
            num_vertices=5,
        )
        labels = np.array([0, 0, 0, 1, 1])
        nxg = to_networkx(g)
        theirs = networkx.algorithms.community.modularity(
            nxg, [{0, 1, 2}, {3, 4}], weight="weight"
        )
        assert modularity(g, labels) == pytest.approx(theirs, abs=1e-10)


class TestLouvainAgainstNetworkx:
    def test_comparable_modularity(self):
        """Our Louvain should reach modularity comparable to networkx's
        reference implementation on a structured graph."""
        g, _ = planted_partition(5, 24, 0.4, 0.02, seed=3)
        ours = louvain(g, seed=0)
        nxg = to_networkx(g)
        theirs_comms = networkx.algorithms.community.louvain_communities(
            nxg, weight="weight", seed=0
        )
        theirs_q = networkx.algorithms.community.modularity(
            nxg, theirs_comms, weight="weight"
        )
        assert ours.modularity >= theirs_q - 0.05
