"""Suite for the longitudinal run ledger and trend report.

The ledger's contract (docs/trend.md) in four enforceable claims:

* **content addressing** — a record's ``run_key`` is a pure function of
  its result-determining configuration: same config (however spelled)
  hashes byte-identically, any result-changing field flips the key, and
  provenance never participates;
* **append-only with loud failure** — records round-trip through the
  JSONL file unchanged, and ``validate`` reports every malformed or
  tampered line with its line number instead of silently skipping it;
* **honest trends** — per-run_key trajectories compare the latest
  sample against the median of the prior ones, so one historic outlier
  can neither mask nor fake a regression, and direction respects
  ``higher_is_better``;
* **CI-gateable** — ``repro trend --fail-on-regression`` exits 1 iff a
  key regressed at the chosen tolerance; ``repro ledger validate``
  exits 1 iff the file has a bad line.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.graph.build import from_edges
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    graph_digest,
    is_enabled,
    make_record,
    provenance,
    run_key,
    scoped_ledger,
    validate_record,
)
from repro.obs.trend import (
    Trend,
    compute_trends,
    metric_value,
    trends_json,
)

from tests.strategies import edge_lists

CFG = {"bench": "x", "graph": "g0", "engine": "vectorized", "seed": 0}


def _bench(config=CFG, wall=1.0, label="amazon", **blocks):
    return make_record(
        kind="bench", source="test", config=config, label=label,
        perf={"wall_seconds": wall, **blocks.pop("perf", {})},
        telemetry=blocks.pop("telemetry", None),
    )


# ---------------------------------------------------------------------------
# run_key: content addressing


class TestRunKey:
    def test_deterministic_and_order_free(self):
        k = run_key(CFG)
        assert k == run_key(CFG)
        assert k == run_key(
            {"seed": 0, "engine": "vectorized", "graph": "g0", "bench": "x"}
        )
        assert len(k) == 64 and set(k) <= set("0123456789abcdef")

    def test_numpy_scalars_hash_as_builtins(self):
        assert run_key({"seed": np.int64(0), "tau": np.float64(0.15)}) \
            == run_key({"seed": 0, "tau": 0.15})

    def test_nested_config_order_free(self):
        a = {"params": {"tau": 0.15, "chunk": 64}, "graph": "g0"}
        b = {"graph": "g0", "params": {"chunk": 64, "tau": 0.15}}
        assert run_key(a) == run_key(b)

    @pytest.mark.parametrize("field,value", [
        ("seed", 1), ("engine", "parallel"), ("graph", "g1"), ("tau", 0.2),
    ])
    def test_result_determining_fields_flip_the_key(self, field, value):
        cfg = dict(CFG, tau=0.15)
        assert run_key(cfg) != run_key(dict(cfg, **{field: value}))

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_key({})

    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists(), data=st.data())
    def test_invariant_under_arc_permutation_and_weight_split(
        self, edges, data
    ):
        """The graph component of a run_key is the canonical arc
        multiset: edge input order and duplicate-arc spelling (one arc
        of weight 2 vs the same arc twice at weight 1) cannot change
        the key, but seed/engine changes always do."""
        g = from_edges(edges, num_vertices=10)
        perm = data.draw(st.permutations(edges))
        g_perm = from_edges(perm, num_vertices=10)
        split = [(u, v, 0.5) for u, v in edges] + \
                [(u, v, 0.5) for u, v in edges]
        g_split = from_edges(split, num_vertices=10)

        cfg = {"graph": graph_digest(g), "engine": "vectorized", "seed": 0}
        assert run_key(cfg) == run_key(dict(cfg, graph=graph_digest(g_perm)))
        assert run_key(cfg) == run_key(dict(cfg, graph=graph_digest(g_split)))
        assert run_key(cfg) != run_key(dict(cfg, seed=1))
        assert run_key(cfg) != run_key(dict(cfg, engine="parallel"))


# ---------------------------------------------------------------------------
# records + ledger file


class TestLedger:
    def test_record_shape_and_provenance(self):
        rec = _bench()
        assert rec["schema"] == LEDGER_SCHEMA
        assert rec["run_key"] == run_key(CFG)
        for key in ("timestamp", "git_rev", "hostname", "cpus",
                    "python", "numpy"):
            assert key in rec["provenance"]

    def test_provenance_never_part_of_identity(self):
        a, b = _bench(), _bench()
        a["provenance"] = dict(a["provenance"], hostname="elsewhere",
                               timestamp="1970-01-01T00:00:00+00:00")
        assert a["run_key"] == b["run_key"]
        validate_record(a)  # still valid: identity is config-only

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            make_record(kind="nope", source="t", config=CFG)

    def test_append_read_round_trip(self, tmp_path):
        led = Ledger(tmp_path / "runs.jsonl")
        recs = [_bench(wall=w) for w in (1.0, 1.1)]
        led.append_many(recs)
        assert led.read() == recs
        assert len(led) == 2
        assert led.validate() == []

    def test_append_rejects_invalid(self, tmp_path):
        led = Ledger(tmp_path / "runs.jsonl")
        with pytest.raises(ValueError, match="missing key"):
            led.append({"schema": LEDGER_SCHEMA})
        assert not led.path.exists()  # nothing half-written

    def test_validate_reports_line_numbers(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        led = Ledger(path)
        led.append(_bench())
        with open(path, "a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"schema": "wrong/v9"}) + "\n")
        errors = led.validate()
        assert len(errors) == 2
        assert errors[0].startswith("line 2:")
        assert errors[1].startswith("line 3:")
        with pytest.raises(ValueError, match=":2: not JSON"):
            led.read()

    def test_tampered_config_detected(self, tmp_path):
        """Editing a record's config after writing breaks the run_key
        re-derivation — the ledger refuses to trend forged history."""
        path = tmp_path / "runs.jsonl"
        Ledger(path).append(_bench())
        rec = json.loads(path.read_text())
        rec["config"]["seed"] = 99  # forge the config, keep the key
        path.write_text(json.dumps(rec) + "\n")
        (error,) = Ledger(path).validate()
        assert "does not match" in error

    def test_scoped_ledger_arms_and_restores(self, tmp_path):
        assert not is_enabled()
        with scoped_ledger(tmp_path / "a.jsonl") as led:
            assert is_enabled()
            led.append(_bench())
        assert not is_enabled()
        assert len(Ledger(tmp_path / "a.jsonl")) == 1


# ---------------------------------------------------------------------------
# trend analysis


def _trend(values, higher_is_better=False):
    return Trend(run_key="k" * 64, label="l", source="s", metric="m",
                 higher_is_better=higher_is_better, values=list(values),
                 timestamps=[f"t{i}" for i in range(len(values))])


class TestTrend:
    def test_metric_value_perf_then_telemetry_floats_only(self):
        rec = _bench(telemetry={"nmi": 0.9, "ok": True, "name": "x"})
        assert metric_value(rec, "wall_seconds") == 1.0
        assert metric_value(rec, "nmi") == 0.9
        assert metric_value(rec, "ok") is None      # bools are not metrics
        assert metric_value(rec, "name") is None
        assert metric_value(rec, "absent") is None

    def test_single_sample_never_gates(self):
        assert _trend([1.0]).status(0.0) == "single"
        assert _trend([1.0]).baseline is None

    @pytest.mark.parametrize("values,tol,expected", [
        ([1.0, 1.05], 0.10, "stable"),
        ([1.0, 1.25], 0.10, "regressed"),
        ([1.0, 0.75], 0.10, "improved"),
        ([1.0, 1.25], 0.50, "stable"),     # same data, looser gate
    ])
    def test_lower_is_better_statuses(self, values, tol, expected):
        assert _trend(values).status(tol) == expected

    def test_higher_is_better_flips_direction(self):
        assert _trend([10.0, 7.0], True).status(0.1) == "regressed"
        assert _trend([10.0, 13.0], True).status(0.1) == "improved"
        assert _trend([10.0, 7.0]).status(0.1) == "improved"

    def test_median_baseline_shrugs_off_one_outlier(self):
        """latest-vs-best would flag 1.02 as regressed after one lucky
        0.2s sample; the median-of-prior baseline does not."""
        tr = _trend([1.0, 0.2, 1.0, 1.02])
        assert tr.baseline == 1.0
        assert tr.status(0.1) == "stable"
        assert tr.best == 0.2

    def test_compute_groups_by_key_and_orders_by_timestamp(self):
        cfg_b = dict(CFG, seed=1)
        recs = [_bench(wall=1.0), _bench(cfg_b, wall=5.0),
                _bench(wall=2.0)]
        # same-second timestamps: file order must break the tie
        for r in recs:
            r["provenance"] = dict(r["provenance"], timestamp="T")
        trends = compute_trends(recs, "wall_seconds")
        assert len(trends) == 2
        by_key = {t.run_key: t for t in trends}
        assert by_key[run_key(CFG)].values == [1.0, 2.0]
        assert by_key[run_key(cfg_b)].values == [5.0]

    def test_filters(self):
        recs = [
            _bench(wall=1.0, label="amazon"),
            _bench(dict(CFG, engine="parallel"), wall=2.0, label="orkut"),
            make_record(kind="service", source="svc",
                        config=dict(CFG, seed=7),
                        perf={"wall_seconds": 3.0}, label="amazon"),
        ]
        assert len(compute_trends(recs, "wall_seconds")) == 3
        assert [t.values for t in compute_trends(
            recs, "wall_seconds", engine="parallel")] == [[2.0]]
        assert [t.values for t in compute_trends(
            recs, "wall_seconds", kind="service")] == [[3.0]]
        assert len(compute_trends(
            recs, "wall_seconds", dataset="amazon")) == 2
        prefix = run_key(CFG)[:10]
        assert [t.values for t in compute_trends(
            recs, "wall_seconds", run_key=prefix)] == [[1.0]]
        assert compute_trends(recs, "no_such_metric") == []

    def test_trends_json_schema(self):
        recs = [_bench(wall=1.0), _bench(wall=1.5)]
        report = trends_json(compute_trends(recs, "wall_seconds"), 0.1)
        assert report["schema"] == "repro.trend/v1"
        (tr,) = report["trends"]
        assert tr["status"] == "regressed"
        assert tr["values"] == [1.0, 1.5]
        json.dumps(report)  # JSON-ready as promised


# ---------------------------------------------------------------------------
# CLI: repro trend / repro ledger


@pytest.fixture
def seeded_ledger(tmp_path):
    """Two run_keys: one stable, one 30% regressed on its latest run."""
    path = tmp_path / "runs.jsonl"
    led = Ledger(path)
    for w in (1.0, 1.02, 0.99):
        led.append(_bench(wall=w, label="stable"))
    for w in (1.0, 1.0, 1.3):
        led.append(_bench(dict(CFG, seed=1), wall=w, label="regressed"))
    return str(path)


class TestTrendCLI:
    def test_report_exits_zero_without_gate(self, seeded_ledger, capsys):
        assert main(["trend", "--ledger", seeded_ledger]) == 0
        out = capsys.readouterr().out
        assert "regressed" in out and "stable" in out

    def test_fail_on_regression_gates(self, seeded_ledger, capsys):
        assert main(["trend", "--ledger", seeded_ledger,
                     "--fail-on-regression"]) == 1
        assert "REGRESSION" in capsys.readouterr().err
        # the same ledger passes at a tolerance above the 30% jump
        assert main(["trend", "--ledger", seeded_ledger,
                     "--tolerance", "0.5", "--fail-on-regression"]) == 0

    def test_json_out(self, seeded_ledger, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["trend", "--ledger", seeded_ledger,
                     "--json-out", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro.trend/v1"
        statuses = {t["label"]: t["status"] for t in payload["trends"]}
        assert statuses == {"stable": "stable", "regressed": "regressed"}

    def test_missing_ledger_and_missing_metric_exit_one(
        self, seeded_ledger, tmp_path, capsys
    ):
        assert main(["trend", "--ledger", str(tmp_path / "nope.jsonl")]) == 1
        assert main(["trend", "--ledger", seeded_ledger,
                     "--metric", "no_such_metric"]) == 1

    def test_ledger_show_and_validate(self, seeded_ledger, capsys):
        assert main(["ledger", "validate", "--ledger", seeded_ledger]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["ledger", "show", "--ledger", seeded_ledger,
                     "--last", "2"]) == 0
        out = capsys.readouterr().out
        assert "last 2 of 6" in out

    def test_ledger_validate_gates_on_corruption(
        self, seeded_ledger, capsys
    ):
        with open(seeded_ledger, "a") as fh:
            fh.write("{broken\n")
        assert main(["ledger", "validate", "--ledger", seeded_ledger]) == 1
        assert "line 7" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# same config run twice through a real engine -> identical key + telemetry


class TestEndToEndIdentity:
    def test_run_cli_twice_identical_run_key_and_telemetry(
        self, tmp_path, capsys
    ):
        edges = tmp_path / "g.txt"
        rng = np.random.default_rng(5)
        lines = {f"{a} {b}" for a, b in rng.integers(0, 30, (120, 2))
                 if a != b}
        edges.write_text("\n".join(sorted(lines)) + "\n")
        ledger = tmp_path / "runs.jsonl"
        for _ in range(2):
            assert main(["run", "--edge-list", str(edges),
                         "--engine", "vectorized",
                         "--ledger", str(ledger)]) == 0
        a, b = Ledger(ledger).read()
        assert a["run_key"] == b["run_key"]
        assert a["telemetry"] == b["telemetry"]
        assert a["telemetry"]["codelength"] > 0
        assert Ledger(ledger).validate() == []
