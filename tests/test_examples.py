"""Smoke tests that the (cheap) example scripts run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "Both backends found" in out
        assert "faster" in out

    def test_protein_interaction(self, capsys):
        _run("protein_interaction_clustering.py")
        out = capsys.readouterr().out
        assert "Function prediction" in out
        assert "NMI=" in out

    def test_hierarchical(self, capsys):
        _run("hierarchical_communities.py")
        out = capsys.readouterr().out
        assert "Recovered hierarchy" in out
        assert "1.000" in out  # perfect NMI at both levels

    def test_streaming(self, capsys):
        _run("streaming_network.py")
        out = capsys.readouterr().out
        assert "incremental refresh" in out.lower()

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "protein_interaction_clustering.py",
            "accelerator_design_study.py",
            "multicore_scaling.py",
            "benchmark_quality_lfr.py",
            "hierarchical_communities.py",
            "distributed_scaling.py",
            "streaming_network.py",
            "spgemm_accelerator.py",
        ],
    )
    def test_example_exists_and_has_main(self, name):
        path = EXAMPLES / name
        assert path.exists()
        text = path.read_text()
        assert '__main__' in text and "def " in text
