"""Tests for the Robin Hood open-addressing software baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.accum.robinhood import RobinHoodAccumulator
from repro.sim.context import HardwareContext
from repro.sim.counters import KernelStats
from repro.sim.machine import baseline_machine


def _make():
    ctx = HardwareContext(baseline_machine())
    ks = KernelStats()
    return RobinHoodAccumulator(ctx, ks.findbest_hash), ks


def _drive(acc, ops):
    acc.begin(len(ops))
    for k, v in ops:
        acc.accumulate(k, v)
    pairs = dict(acc.items())
    acc.finish()
    return pairs


class TestFunctional:
    def test_basic(self):
        acc, _ = _make()
        assert _drive(acc, [(1, 1.0), (1, 2.0), (2, 5.0)]) == {1: 3.0, 2: 5.0}

    def test_rehash_preserves_contents(self):
        acc, _ = _make()
        ops = [(k, float(k)) for k in range(100)]
        got = _drive(acc, ops)
        assert got == {k: float(k) for k in range(100)}
        assert acc._slots >= 128  # grew past 0.75 load factor

    def test_reuse_across_vertices(self):
        acc, _ = _make()
        assert _drive(acc, [(7, 1.0)]) == {7: 1.0}
        assert _drive(acc, [(9, 2.0)]) == {9: 2.0}

    def test_begin_sizes_for_expected(self):
        acc, _ = _make()
        acc.begin(100)
        assert acc._slots * acc.MAX_LOAD >= 100

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 64), st.floats(0.01, 9.0)),
            min_size=0,
            max_size=200,
        )
    )
    def test_exactness_property(self, ops):
        acc, _ = _make()
        ref = {}
        for k, v in ops:
            ref[k] = ref.get(k, 0.0) + v
        got = _drive(acc, ops)
        assert set(got) == set(ref)
        for k in ref:
            assert got[k] == pytest.approx(ref[k], rel=1e-12)


class TestRobinHoodInvariant:
    def test_probe_distances_are_robin_hood_ordered(self):
        """After any insertions, no slot's resident is 'richer' than an
        element probing past it (the Robin Hood invariant: distances along
        a probe run never decrease by more than the run's steps)."""
        acc, _ = _make()
        acc.begin(0)
        for k in range(60):
            acc.accumulate(k * 7, 1.0)
        slots = acc._slots
        for s in range(slots):
            if acc._keys[s] is None:
                continue
            home = acc._slot_of(acc._keys[s])
            expected_dist = (s - home) % slots
            assert acc._dist[s] == expected_dist


class TestCostShape:
    def test_fewer_instructions_than_chained(self):
        from repro.accum.softhash import SoftwareHashAccumulator

        ops = [(k % 17, 1.0) for k in range(500)]
        rh, rks = _make()
        _drive(rh, ops)
        ctx = HardwareContext(baseline_machine())
        sks = KernelStats()
        ch = SoftwareHashAccumulator(ctx, sks.findbest_hash)
        _drive(ch, ops)
        assert (
            rks.findbest_hash.instructions < sks.findbest_hash.instructions
        )

    def test_no_dependent_chain_stalls_beyond_first(self):
        acc, ks = _make()
        _drive(acc, [(k, 1.0) for k in range(50)])
        # one serialized head access per op, nothing per probe step
        assert ks.findbest_hash.dep_stall_cycles == pytest.approx(
            50 * acc.costs.dep_stall_per_probe
        )


class TestInfomapIntegration:
    def test_quality_matches_softhash(self):
        import numpy as np

        from repro.core.infomap import run_infomap
        from repro.graph.generators import planted_partition
        from repro.quality import normalized_mutual_information

        g, truth = planted_partition(4, 25, 0.4, 0.02, seed=5)
        rr = run_infomap(g, backend="robinhood")
        rs = run_infomap(g, backend="softhash")
        assert normalized_mutual_information(rr.modules, truth) > 0.95
        assert abs(rr.codelength - rs.codelength) / rs.codelength < 0.03
        assert rr.hash_seconds < rs.hash_seconds
