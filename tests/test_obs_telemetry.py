"""Tests for per-run convergence telemetry across all three engines."""

import numpy as np
import pytest

from repro.core.infomap import run_infomap
from repro.core.multicore import run_infomap_multicore
from repro.core.vectorized import run_infomap_vectorized
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.obs.export import jsonable
from repro.obs.metrics import scoped_registry
from repro.obs.telemetry import ConvergenceTelemetry


@pytest.fixture
def graph():
    g, _ = ring_of_cliques(5, 6)
    return g


def _all_engine_telemetries(g):
    rs = run_infomap(g, backend="softhash")
    rv = run_infomap_vectorized(g)
    rm = run_infomap_multicore(g, num_cores=2, backend="softhash")
    return {
        "sequential": (rs, rs.telemetry),
        "vectorized": (rv, rv.telemetry),
        "multicore": (rm, rm.telemetry),
    }


class TestTelemetryPresence:
    def test_present_on_all_three_engines(self, graph):
        for engine, (result, tele) in _all_engine_telemetries(graph).items():
            assert isinstance(tele, ConvergenceTelemetry), engine
            assert tele.engine == engine
            assert tele.num_passes > 0
            assert len(tele.levels) > 0
            assert tele.wall_seconds > 0
            assert tele.converged

    def test_pass_records_carry_convergence_fields(self, graph):
        r = run_infomap(graph, backend="softhash")
        for p in r.telemetry.passes:
            assert p.num_modules >= 1
            assert p.moves >= 0
            assert p.wall_seconds >= 0
            assert np.isfinite(p.codelength)
        # the terminating pass of each level makes zero moves
        assert r.telemetry.passes[-1].moves == 0

    def test_kernel_wall_times_recorded(self, graph):
        r = run_infomap(graph, backend="softhash")
        kernels = set(r.telemetry.kernel_wall_seconds)
        assert {"pagerank", "findbest"} <= kernels
        totals = r.telemetry.kernel_totals()
        assert all(v >= 0 for v in totals.values())
        # one findbest sample per recorded pass
        assert len(r.telemetry.kernel_wall_seconds["findbest"]) == (
            r.telemetry.num_passes
        )

    def test_telemetry_is_jsonable(self, graph):
        r = run_infomap_vectorized(graph)
        doc = r.telemetry.to_dict()
        import json

        json.dumps(doc)  # must not raise
        assert doc["engine"] == "vectorized"
        assert len(doc["passes"]) == r.telemetry.num_passes


class TestConvergenceSemantics:
    def test_codelength_monotone_non_increasing(self, graph):
        for engine, (result, tele) in _all_engine_telemetries(graph).items():
            traj = tele.codelength_trajectory()
            for a, b in zip(traj, traj[1:]):
                assert b <= a + 1e-9, f"{engine}: codelength increased"

    def test_final_codelength_matches_result(self, graph):
        rs = run_infomap(graph, backend="softhash")
        assert rs.telemetry.final_codelength == pytest.approx(rs.codelength)
        rm = run_infomap_multicore(graph, num_cores=2, backend="softhash")
        assert rm.telemetry.final_codelength == pytest.approx(rm.codelength)
        rv = run_infomap_vectorized(graph)
        assert rv.telemetry.final_codelength == pytest.approx(rv.codelength)

    def test_engines_agree_on_same_seed(self):
        # strongly clustered graph: every engine finds the planted partition,
        # so telemetry endpoints must agree across engines
        g, _ = planted_partition(6, 20, p_in=0.35, p_out=0.004, seed=11)
        teles = {
            name: tele for name, (_, tele) in _all_engine_telemetries(g).items()
        }
        finals = {n: t.final_codelength for n, t in teles.items()}
        ref = finals["sequential"]
        for name, val in finals.items():
            assert val == pytest.approx(ref, rel=0.02), finals
        modules = {n: t.final_num_modules for n, t in teles.items()}
        assert modules["sequential"] == modules["multicore"]

    def test_module_count_decreases_within_level(self, graph):
        r = run_infomap(graph, backend="softhash")
        level0 = [p for p in r.telemetry.passes if p.level == 0]
        assert level0[0].num_modules >= level0[-1].num_modules
        assert level0[-1].num_modules < graph.num_vertices


class TestMetricsPublication:
    def test_engines_publish_when_enabled(self, graph):
        with scoped_registry() as reg:
            run_infomap(graph, backend="asa")
            run_infomap_vectorized(graph)
            run_infomap_multicore(graph, num_cores=2, backend="softhash")
        names = reg.names()
        assert {"infomap.passes", "codelength.bits", "kernel.wall_seconds",
                "findbest.moves_per_pass"} <= names
        for engine in ("sequential", "vectorized", "multicore"):
            assert reg.get_value("infomap.runs", engine=engine) == 1
            assert reg.get_value("infomap.passes", engine=engine) > 0

    def test_nothing_published_when_disabled(self, graph):
        from repro.obs import metrics as obs_metrics

        before = len(obs_metrics.get_registry().series())
        run_infomap(graph, backend="softhash")
        assert len(obs_metrics.get_registry().series()) == before

    def test_per_level_codelength_gauges(self, graph):
        with scoped_registry() as reg:
            r = run_infomap(graph, backend="softhash")
        for lvl in r.telemetry.levels:
            val = reg.get_value(
                "codelength.bits", engine="sequential", level=lvl.level
            )
            assert val == pytest.approx(lvl.codelength)
        assert reg.get_value(
            "codelength.bits", engine="sequential", level="final"
        ) == pytest.approx(r.codelength)
