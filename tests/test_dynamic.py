"""Tests for incremental community maintenance (dynamic graphs)."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicCommunities
from repro.core.infomap import run_infomap
from repro.core.partition import Partition
from repro.core.flow import FlowNetwork
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.quality import normalized_mutual_information


def seeded_dynamic(graph, **kwargs):
    dyn = DynamicCommunities(graph.num_vertices, directed=graph.directed,
                             **kwargs)
    src, dst, w = graph.edge_array()
    if not graph.directed:
        keep = src < dst
        src, dst, w = src[keep], dst[keep], w[keep]
    for u, v, x in zip(src.tolist(), dst.tolist(), w.tolist()):
        dyn.add_edge(u, v, x)
    return dyn


class TestPartitionFromAssignment:
    def test_matches_recompute(self):
        g, truth = ring_of_cliques(4, 5)
        net = FlowNetwork.from_graph(g)
        p = Partition.from_assignment(net, truth)
        assert p.codelength == pytest.approx(p.codelength_recomputed())
        assert p.num_modules == 4
        assert np.array_equal(np.bincount(truth, minlength=net.num_vertices),
                              p.module_size)

    def test_moves_stay_consistent_after_seeding(self):
        g, truth = ring_of_cliques(3, 4)
        net = FlowNetwork.from_graph(g)
        p = Partition.from_assignment(net, truth)
        # move vertex 0 to module of clique 1 and verify bookkeeping
        out_to = {}
        idx, flow = net.out_arcs(0)
        for t, f in zip(idx.tolist(), flow.tolist()):
            m = int(p.module[t])
            out_to[m] = out_to.get(m, 0.0) + f
        cur = int(p.module[0])
        target = [m for m in out_to if m != cur][0]
        p.apply_move(0, target, out_to.get(cur, 0.0), out_to.get(cur, 0.0),
                     out_to.get(target, 0.0), out_to.get(target, 0.0))
        assert p.codelength == pytest.approx(p.codelength_recomputed())

    def test_length_validation(self):
        g, _ = ring_of_cliques(2, 3)
        net = FlowNetwork.from_graph(g)
        with pytest.raises(ValueError):
            Partition.from_assignment(net, np.zeros(3, dtype=np.int64))


class TestDynamicBasics:
    def test_edge_bookkeeping(self):
        dyn = DynamicCommunities(4)
        dyn.add_edge(0, 1)
        dyn.add_edge(1, 0, 2.0)  # same undirected edge, weights add
        assert dyn.num_edges == 1
        dyn.remove_edge(0, 1)
        assert dyn.num_edges == 0

    def test_remove_missing_edge(self):
        dyn = DynamicCommunities(3)
        with pytest.raises(KeyError):
            dyn.remove_edge(0, 1)

    def test_vertex_range_check(self):
        dyn = DynamicCommunities(3)
        with pytest.raises(ValueError):
            dyn.add_edge(0, 5)

    def test_weight_validation(self):
        dyn = DynamicCommunities(3)
        with pytest.raises(ValueError):
            dyn.add_edge(0, 1, weight=0.0)

    def test_empty_graph_refresh_defined(self):
        """An edgeless graph refreshes to singletons at codelength 0,
        rather than leaking ``graph()``'s ValueError."""
        dyn = DynamicCommunities(3)
        res = dyn.refresh()
        assert np.array_equal(res.modules, np.arange(3))
        assert res.num_modules == 3
        assert res.codelength == 0.0
        assert res.touched_vertices == 0 and not res.full_rerun
        # graph() itself still refuses to materialize an edgeless CSR
        with pytest.raises(ValueError):
            dyn.graph()

    def test_refresh_after_emptying_resets(self):
        dyn = DynamicCommunities(4)
        dyn.add_edge(0, 1)
        dyn.add_edge(2, 3)
        dyn.refresh()
        dyn.remove_edge(0, 1)
        dyn.remove_edge(2, 3)
        res = dyn.refresh()
        assert res.num_modules == 4 and res.codelength == 0.0

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            DynamicCommunities(4, engine="sequential")
        with pytest.raises(ValueError):
            DynamicCommunities(4, engine="vectorized", workers=2)
        with pytest.raises(ValueError):
            DynamicCommunities(4, full_rerun_threshold=0.0)


class TestIncrementalRefresh:
    def test_first_refresh_matches_static(self):
        g, truth = planted_partition(4, 20, 0.4, 0.02, seed=1)
        dyn = seeded_dynamic(g)
        res = dyn.refresh()
        assert res.full_rerun
        static = run_infomap(g)
        assert res.codelength == pytest.approx(static.codelength, rel=0.03)
        assert normalized_mutual_information(res.modules, truth) > 0.85

    def test_incremental_touches_fewer_vertices(self):
        g, _ = planted_partition(6, 25, 0.4, 0.01, seed=2)
        dyn = seeded_dynamic(g)
        first = dyn.refresh()
        dyn.add_edge(0, 30)
        second = dyn.refresh()
        assert not second.full_rerun
        assert second.touched_vertices < first.touched_vertices

    def test_incremental_quality_close_to_scratch(self):
        g, truth = planted_partition(5, 24, 0.4, 0.02, seed=3)
        dyn = seeded_dynamic(g)
        dyn.refresh()
        rng = np.random.default_rng(0)
        # random intra-community reinforcements + a few cross edges
        for _ in range(12):
            u, v = rng.integers(0, g.num_vertices, 2)
            if u != v:
                dyn.add_edge(int(u), int(v))
        res = dyn.refresh()
        scratch = run_infomap(dyn.graph())
        assert res.codelength <= scratch.codelength * 1.05 + 1e-9

    def test_structural_change_tracked(self):
        """Merging two cliques by adding many cross edges must merge their
        modules incrementally (threshold pinned high to stay warm)."""
        g, truth = ring_of_cliques(4, 5)
        dyn = seeded_dynamic(g, full_rerun_threshold=1.0)
        dyn.refresh()
        before = dyn.modules.copy()
        assert before[0] != before[5]  # cliques 0 and 1 distinct
        for i in range(5):
            for j in range(5):
                if (i, 5 + j) != (0, 5):
                    dyn.add_edge(i, 5 + j)
        res = dyn.refresh()
        assert not res.full_rerun
        assert res.modules[0] == res.modules[5]  # merged now

    def test_edge_deletion_splits(self):
        """Deleting the bridge edges between two merged cliques must let
        them separate again (threshold pinned high to stay warm)."""
        dyn = DynamicCommunities(10, full_rerun_threshold=1.0)
        # two 5-cliques fully cross-connected (one community)
        for a in range(10):
            for b in range(a + 1, 10):
                dyn.add_edge(a, b)
        dyn.refresh()
        assert dyn.modules[0] == dyn.modules[9]
        # delete all cross edges
        for a in range(5):
            for b in range(5, 10):
                dyn.remove_edge(a, b)
        # keep one weak bridge so the graph stays connected
        dyn.add_edge(0, 5, 0.1)
        res = dyn.refresh()
        assert not res.full_rerun
        assert res.modules[0] != res.modules[9]
        assert res.num_modules == 2

    def test_refresh_without_updates_is_stable(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=4)
        dyn = seeded_dynamic(g)
        a = dyn.refresh()
        b = dyn.refresh()
        assert np.array_equal(a.modules, b.modules)
        assert b.touched_vertices == 0
