"""Tests for the experiment harness (cheap experiments only; the expensive
sweeps run in benchmarks/)."""

import numpy as np
import pytest

from repro.harness.experiments import (
    fig4_degree_distribution,
    fig5_cam_coverage,
    lfr_quality,
    table1_datasets,
    table2_machines,
)


class TestTable1:
    def test_rows_and_order(self):
        data, table = table1_datasets()
        assert list(data) == [
            "amazon", "dblp", "youtube", "soc-pokec", "livejournal", "orkut",
        ]
        out = table.render()
        assert "amazon" in out and "orkut" in out

    def test_paper_sizes_recorded(self):
        data, _ = table1_datasets()
        assert data["orkut"]["paper_edges"] == 117_185_083
        assert data["amazon"]["paper_vertices"] == 334_863


class TestTable2:
    def test_l3_sizes_differ(self):
        data, table = table2_machines()
        assert data["native_l3"] == 20 * 1024 * 1024
        assert data["baseline_l3"] == 16 * 1024 * 1024
        assert "20MB" in table.render() and "16MB" in table.render()


class TestFig4:
    def test_powerlaw_shape(self):
        data, _ = fig4_degree_distribution(names=("youtube",))
        buckets = data["youtube"]["buckets"]
        keys = sorted(buckets)
        # monotone-ish decay: first bucket far larger than the tail
        assert buckets[keys[0]] > 10 * max(1, buckets[keys[-1]])

    def test_alpha_reported(self):
        data, _ = fig4_degree_distribution(names=("soc-pokec",))
        assert 1.0 < data["soc-pokec"]["alpha"] < 4.0


class TestFig5:
    def test_coverage_monotone_in_cam_size(self):
        data, _ = fig5_cam_coverage(names=("orkut",), cam_kb=(1, 2, 4, 8))
        cov = data["orkut"]
        vals = [cov[kb] for kb in (1, 2, 4, 8)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_paper_claims(self):
        data, _ = fig5_cam_coverage(cam_kb=(1, 8))
        for name, cov in data.items():
            assert cov[1] > 0.82, name
            assert cov[8] > 0.99, name


class TestLFRQuality:
    def test_infomap_beats_or_ties_louvain_at_high_mixing(self):
        data, table = lfr_quality(mus=(0.1, 0.5), n=600, seed=3)
        # easy regime: both near-perfect
        assert data[0.1]["infomap_nmi"] > 0.85
        assert data[0.1]["louvain_nmi"] > 0.85
        # harder regime: Infomap at least competitive
        assert data[0.5]["infomap_nmi"] >= data[0.5]["louvain_nmi"] - 0.1
        assert "mu" in table.render()


class TestCalibrate:
    def test_shape_report_single_dataset(self):
        from repro.harness.calibrate import shape_report

        t = shape_report(["amazon"])
        out = t.render()
        assert "amazon" in out and "x" in out

    def test_main_default_names(self, monkeypatch, capsys):
        """main([]) must fall back to the Table I list, not sys.argv."""
        import repro.harness.calibrate as cal

        monkeypatch.setattr(
            cal, "shape_report", lambda names: _FakeTable(names)
        )
        cal.main([])
        out = capsys.readouterr().out
        assert "amazon" in out and "orkut" in out


class _FakeTable:
    def __init__(self, names):
        self.names = names

    def print(self):
        print(" ".join(self.names))
