"""Leak suite: no shared-memory segment survives any exit path.

The parallel engine's arenas are files under ``/dev/shm`` named
``repro-<pid>-...`` (see :mod:`repro.core.arena`).  This suite scans
that directory by prefix and asserts **zero surviving segments** after:

* a normal run (release on rebind/close),
* a run with an injected worker crash mid-sweep (recovery path),
* a KeyboardInterrupt-style abort that never reaches the pool's
  ``close()`` (the ``atexit`` hook, exercised in a real subprocess),
* a hard-killed master (the orphan sweep),
* the job service's multi-run paths (``repro.service``): a 50-job
  batch over warm pools grows ``/dev/shm`` by exactly zero segments,
  and the pool's shutdown/rebind hooks (``end_run`` / ``abort_run`` /
  ``close``) are idempotent in any order.

Plus the registry unit layer: idempotent release, prefix scanning, and
orphan-sweep selectivity (live-pid segments are never touched).
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core import arena
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.parallel import run_infomap_parallel
from repro.graph.generators import planted_partition

pytestmark = pytest.mark.skipif(
    not arena.shm_dir_available(),
    reason="shared-memory segments are not observable as files (no /dev/shm)",
)

_SHM_DIR = "/dev/shm"


def _graph():
    g, _ = planted_partition(4, 20, 0.45, 0.02, seed=1)
    return g


def _mine():
    """Segments owned by this process right now."""
    return arena.live_segments(arena.segment_prefix())


# ---------------------------------------------------------------------------
# exit path 1: normal runs release every arena


def test_normal_run_leaves_no_segments():
    assert _mine() == []
    r = run_infomap_parallel(_graph(), workers=2, seed=1)
    assert r.num_modules > 0
    assert _mine() == []


def test_back_to_back_runs_leave_no_segments():
    for seed in (0, 1, 2):
        run_infomap_parallel(_graph(), workers=2, seed=seed)
    assert _mine() == []


# ---------------------------------------------------------------------------
# exit path 2: injected crashes (recovery respawns workers mid-run)


def test_injected_crash_leaves_no_segments():
    plan = FaultPlan((
        FaultSpec("kill", worker=0, barrier=0),
        FaultSpec("kill", worker=1, barrier=2),
    ))
    r = run_infomap_parallel(
        _graph(), workers=2, seed=1, fault_plan=plan, worker_timeout=2.0
    )
    assert r.respawns >= 1
    assert _mine() == []


def test_injected_hang_leaves_no_segments():
    r = run_infomap_parallel(
        _graph(), workers=2, seed=1,
        fault_plan="hang@w1:b1", worker_timeout=0.4,
    )
    assert r.respawns >= 1
    assert _mine() == []


# ---------------------------------------------------------------------------
# exit path 3: KeyboardInterrupt-style abort — the pool's close() never
# runs; the atexit hook must unlink the arena.  Run in a real
# subprocess so the interpreter actually dies.

_INTERRUPT_SCRIPT = textwrap.dedent("""\
    import os
    from repro.core import arena
    from repro.core.bsp import edge_balanced_blocks
    from repro.core.flow import FlowNetwork
    from repro.core.parallel import _WorkerPool
    from repro.core.vectorized import Workspace
    from repro.graph.generators import planted_partition

    g, _ = planted_partition(3, 10, 0.4, 0.05, seed=0)
    net = FlowNetwork.from_graph(g)
    ws = Workspace()
    ws.bind(net)
    pool = _WorkerPool(2)
    pool.begin_level(net, 0, edge_balanced_blocks(net, 2), ws)
    live = arena.live_segments(arena.segment_prefix())
    assert len(live) == 1, live   # the arena exists mid-run
    print("ARENA", live[0], flush=True)
    raise KeyboardInterrupt      # abort with no close(): atexit must clean
""")


def test_keyboard_interrupt_abort_leaves_no_segments():
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _INTERRUPT_SCRIPT],
        capture_output=True, text=True, timeout=120,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
    )
    assert proc.returncode != 0, proc.stderr  # the interrupt propagated
    assert "KeyboardInterrupt" in proc.stderr, proc.stderr
    lines = [ln for ln in proc.stdout.splitlines() if ln.startswith("ARENA ")]
    assert lines, proc.stdout  # the arena did exist before the abort
    name = lines[0].split()[1]
    assert not os.path.exists(os.path.join(_SHM_DIR, name))
    child_pid = int(name[len(arena.SHM_PREFIX) + 1:].split("-", 1)[0])
    assert arena.live_segments(arena.segment_prefix(child_pid)) == []


# ---------------------------------------------------------------------------
# exit path 4: hard-killed master — the orphan sweep reclaims its
# segments on the next pool start


def _dead_pid() -> int:
    p = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, timeout=60,
    )
    return int(p.stdout.strip())


def test_orphan_sweep_reclaims_dead_owner_segments():
    name = f"{arena.SHM_PREFIX}-{_dead_pid()}-0-deadbeef"
    path = os.path.join(_SHM_DIR, name)
    with open(path, "wb") as fh:  # fake leftover of a SIGKILLed master
        fh.write(b"\0" * 64)
    try:
        removed = arena.sweep_orphans()
        assert name in removed
        assert not os.path.exists(path)
    finally:
        if os.path.exists(path):  # never leak the fixture itself
            os.unlink(path)


def test_orphan_sweep_spares_live_owners():
    shm = arena.create_arena(64)
    try:
        assert arena.sweep_orphans() == []  # our pid is alive
        assert shm.name in _mine()
    finally:
        arena.release_arena(shm)
    assert _mine() == []


def test_pool_start_sweeps_orphans():
    name = f"{arena.SHM_PREFIX}-{_dead_pid()}-1-deadbeef"
    path = os.path.join(_SHM_DIR, name)
    with open(path, "wb") as fh:
        fh.write(b"\0" * 64)
    try:
        r = run_infomap_parallel(_graph(), workers=2, seed=0)
        assert r.num_modules > 0
        assert not os.path.exists(path)  # swept at pool construction
        assert _mine() == []
    finally:
        if os.path.exists(path):
            os.unlink(path)


# ---------------------------------------------------------------------------
# exit path 5: the job service's multi-run pool reuse — arenas are
# provisioned per job and must be gone again by the time each job's
# result is reported, for as many jobs as the batch carries


def _shm_listing():
    """Every file currently under /dev/shm (any owner, any prefix) —
    the service must not grow the directory even by foreign names."""
    return sorted(os.listdir(_SHM_DIR))


def test_service_50_job_batch_leaves_shm_untouched():
    from repro.service import JobService, JobSpec

    g = _graph()
    before = _shm_listing()
    with JobService(cache_entries=0) as svc:
        results = svc.run_batch(
            [
                JobSpec(graph=g, workers=2, seed=seed % 5)
                for seed in range(50)
            ]
        )
        assert all(r.ok for r in results)
        assert sum(r.warm_pool for r in results) == 49  # one cold spawn
        # arenas are per-job: a *parked* (open, idle) service owns none
        assert _mine() == []
        assert _shm_listing() == before
    assert _mine() == []
    assert _shm_listing() == before


def test_service_deadline_and_fault_jobs_leave_no_segments():
    from repro.service import JobService, JobSpec

    g = _graph()
    with JobService(cache_entries=0) as svc:
        svc.run_batch(
            [
                JobSpec(graph=g, workers=2, seed=0, deadline=1e-9),
                JobSpec(graph=g, workers=2, seed=0,
                        fault_plan="kill@w0:b1", worker_timeout=5.0),
                JobSpec(graph=g, workers=2, seed=0),
            ]
        )
        assert _mine() == []  # cancel + recovery both released arenas
    assert _mine() == []


# ---------------------------------------------------------------------------
# pool shutdown + rebind idempotence (the hooks the service leans on)


def test_pool_end_run_and_close_are_idempotent_in_any_order():
    from repro.core.parallel import _WorkerPool, run_infomap_parallel

    pool = _WorkerPool(2)
    try:
        # rebind the same pool across several runs: each run provisions
        # and releases its own arena
        first = run_infomap_parallel(_graph(), workers=2, seed=0, pool=pool)
        assert _mine() == []
        second = run_infomap_parallel(_graph(), workers=2, seed=0, pool=pool)
        assert np.array_equal(first.modules, second.modules)
        assert _mine() == []
        pool.end_run()    # idempotent: the run already ended itself
        pool.end_run()
        pool.abort_run()  # abort after end is a respawn, not an error
        assert not pool.closed
        # the pool still works after the redundant shutdown calls
        third = run_infomap_parallel(_graph(), workers=2, seed=0, pool=pool)
        assert np.array_equal(first.modules, third.modules)
    finally:
        pool.close()
    pool.close()          # double close is a no-op
    pool.abort_run()      # post-close abort is a no-op, not a crash
    pool.end_run()
    assert pool.closed
    with pytest.raises(RuntimeError):
        pool.reset_run()  # but rebinding a closed pool is refused
    assert _mine() == []


def test_borrowed_pool_survives_owner_style_misuse():
    from repro.core.parallel import _WorkerPool, run_infomap_parallel

    pool = _WorkerPool(2)
    try:
        with pytest.raises(ValueError):
            # worker-count mismatch is refused before any arena exists
            run_infomap_parallel(_graph(), workers=4, pool=pool)
        assert _mine() == []
        r = run_infomap_parallel(_graph(), workers=2, seed=1, pool=pool)
        assert r.num_modules > 0
    finally:
        pool.close()
    with pytest.raises(ValueError):
        run_infomap_parallel(_graph(), workers=2, pool=pool)  # closed
    assert _mine() == []


# ---------------------------------------------------------------------------
# registry unit layer


def test_release_is_idempotent():
    shm = arena.create_arena(128)
    assert shm.name in _mine()
    arena.release_arena(shm)
    arena.release_arena(shm)  # second release is a no-op, not an error
    arena.release_arena(None)
    assert _mine() == []


def test_segment_names_embed_owner_pid():
    shm = arena.create_arena(64)
    try:
        assert shm.name.startswith(f"{arena.SHM_PREFIX}-{os.getpid()}-")
    finally:
        arena.release_arena(shm)


def test_atexit_cleanup_unlinks_registered_segments():
    shm = arena.create_arena(64)
    assert shm.name in _mine()
    arena._cleanup_registered()  # what atexit runs on interpreter death
    assert _mine() == []
    arena.release_arena(shm)  # and the normal path stays safe afterwards
