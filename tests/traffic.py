"""Seeded, deterministic async load generator for the gateway.

The traffic harness is first-class test infrastructure
(``tests/test_gateway.py`` drives it; CI's ``gateway`` job runs it as a
30-second soak): it generates a **reproducible** request stream — same
seed, same tenant mix, same jobs, same virtual-time stamps, same
malformed-line injections — sends it at a gateway over real sockets,
and reduces the responses to per-tenant accept/reject/result digests
that are byte-equal across runs at equal seed.

Determinism model
-----------------
Everything random comes from one ``numpy`` Generator seeded by
``TrafficConfig.seed``; nothing reads the wall clock into the request
stream.  The gateway must run with ``virtual_time=True`` so rate-limit
decisions are a pure function of each line's ``at`` stamp, and with a
queue depth deep enough that backpressure never fires under the
configured load (backpressure depends on drain timing, which is real —
the backpressure *tests* pin it separately with a paused gateway).
Responses stream back in completion order, which is **not**
deterministic; the digest therefore sorts each tenant's responses by
the client-chosen ``id`` before hashing, so it pins *what* every
request got, not *when* it arrived.

Arrival processes
-----------------
``open`` mode fires the whole schedule without waiting for responses
(optionally paced in real time to stretch a soak over ``--seconds``);
``closed`` mode awaits each response before the next send — the
classic closed-loop client.  Virtual-time stamps advance by seeded
exponential inter-arrival gaps in both modes, so the admission
decisions are identical between them.

Chaos
-----
``chaos=True`` makes a seeded fraction of jobs ``parallel`` jobs with
``random:SEED:N`` fault plans (:mod:`repro.core.faults`) — worker
kills, hangs, slowdowns, and corruptions mid-run.  Faulted runs are
bit-identical by the supervisor's replay contract, so the digest stays
reproducible with chaos on.

Run the soak standalone::

    PYTHONPATH=src:. python -m tests.traffic --seconds 30 --shards 2 \
        --chaos --seed 7 --report soak.json
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrafficConfig", "GatewayClient", "build_schedule",
           "run_traffic", "run_soak", "sequence_digest"]

#: tenant name -> share of the request stream
DEFAULT_TENANTS = {"alice": 0.5, "bob": 0.3, "mallory": 0.2}


@dataclass
class TrafficConfig:
    """One reproducible load shape."""

    seed: int = 7
    jobs: int = 60
    tenants: dict = field(default_factory=lambda: dict(DEFAULT_TENANTS))
    #: "open" fires the schedule; "closed" awaits each response first
    mode: str = "open"
    #: mean virtual-time gap between a tenant's arrivals (seconds)
    mean_gap: float = 0.05
    #: fraction of jobs that are parallel chaos jobs (0 disables)
    chaos_share: float = 0.0
    #: fraction of lines that are deliberately malformed (shape errors)
    invalid_share: float = 0.05
    #: fraction of jobs that repeat an earlier job verbatim (cache food)
    repeat_share: float = 0.3
    #: stretch real sending over this many wall seconds (0 = flat out);
    #: pacing never reaches the request stream, only the send times
    pace_seconds: float = 0.0

    def validate(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be open|closed, got {self.mode!r}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if not self.tenants:
            raise ValueError("need at least one tenant")


class GatewayClient:
    """Minimal JSONL client: one connection, send objects, read rows."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send(self, obj: dict) -> None:
        self.writer.write((json.dumps(obj, sort_keys=True) + "\n").encode())
        await self.writer.drain()

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self) -> dict | None:
        """Next response row, or None at end of stream."""
        line = await self.reader.readline()
        if not line:
            return None
        return json.loads(line)

    async def recv_many(self, n: int) -> list[dict]:
        rows = []
        for _ in range(n):
            row = await self.recv()
            if row is None:
                break
            rows.append(row)
        return rows

    def write_eof(self) -> None:
        """Half-close: no more requests; responses keep streaming."""
        self.writer.write_eof()

    async def drain_to_eof(self) -> list[dict]:
        """Half-close and collect every remaining response row."""
        self.write_eof()
        rows = []
        while True:
            row = await self.recv()
            if row is None:
                return rows
            rows.append(row)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# --------------------------------------------------------------- schedule
def _job_body(rng: np.random.Generator, chaos: bool) -> dict:
    """One deterministic job object (jobsfile schema, no envelope)."""
    recipe = {
        "communities": int(rng.integers(3, 5)),
        "size": int(rng.integers(12, 20)),
        "p_in": 0.45, "p_out": 0.02,
        "seed": int(rng.integers(0, 4)),
    }
    body = {"planted": recipe, "seed": int(rng.integers(0, 3))}
    if chaos:
        body.update({
            "engine": "parallel", "workers": 2,
            "fault_plan": f"random:{int(rng.integers(0, 1000))}:1",
            # short reply deadline so an injected hang recovers fast
            # inside a bounded soak
            "worker_timeout": 2.0,
        })
    else:
        body.update({"engine": "vectorized", "workers": 1})
    return body


def _invalid_body(rng: np.random.Generator) -> dict:
    """A deterministically malformed line (drawn from real failure modes)."""
    kind = int(rng.integers(0, 3))
    if kind == 0:    # unknown key → jobsfile shape error
        return {"planted": {"communities": 3, "size": 12, "p_in": 0.45,
                            "p_out": 0.02}, "bogus_key": 1}
    if kind == 1:    # no graph source
        return {"engine": "vectorized", "workers": 1}
    return {"planted": {"communities": 3, "size": 12, "p_in": 0.45,
                        "p_out": 0.02}, "engine": "vectorized",
            "workers": 1, "tau": 7.0}  # bad value → admission reject


def build_schedule(cfg: TrafficConfig) -> dict[str, list[dict]]:
    """Per-tenant request schedules, fully determined by ``cfg.seed``.

    Each entry already carries its envelope: ``tenant``, ``id``
    (``{tenant}-{i}``), and a strictly increasing virtual-time ``at``
    stamp from a seeded exponential arrival process.
    """
    cfg.validate()
    rng = np.random.default_rng(cfg.seed)
    names = sorted(cfg.tenants)
    weights = np.array([cfg.tenants[t] for t in names], dtype=float)
    weights /= weights.sum()
    counts = {t: 0 for t in names}
    for _ in range(cfg.jobs):
        counts[names[int(rng.choice(len(names), p=weights))]] += 1

    schedules: dict[str, list[dict]] = {}
    history: list[dict] = []
    for tenant in names:
        lines: list[dict] = []
        at = 0.0
        for i in range(counts[tenant]):
            at += float(rng.exponential(cfg.mean_gap))
            roll = float(rng.random())
            if roll < cfg.invalid_share:
                body = _invalid_body(rng)
            elif roll < cfg.invalid_share + cfg.repeat_share and history:
                body = dict(history[int(rng.integers(0, len(history)))])
            else:
                chaos = (cfg.chaos_share > 0
                         and float(rng.random()) < cfg.chaos_share)
                body = _job_body(rng, chaos)
                history.append(body)
            line = dict(body)
            line.update({"tenant": tenant, "id": f"{tenant}-{i}",
                         "at": round(at, 6)})
            lines.append(line)
        schedules[tenant] = lines
    return schedules


# ----------------------------------------------------------------- digests
def sequence_digest(rows: list[dict]) -> str:
    """Order-independent digest of what every request got.

    Sorts by the client ``id`` (completion order is real concurrency,
    not semantics) and hashes the per-request outcome tuple: status,
    reject gate, module count, codelength.  Two runs at equal seed must
    produce equal digests — the soak's reproducibility contract.
    """
    keyed = sorted(rows, key=lambda r: str(r.get("id")))
    h = hashlib.sha256()
    for r in keyed:
        h.update((
            f"{r.get('id')}|{r.get('status')}|{r.get('reject', '')}"
            f"|{r.get('num_modules', '')}|{r.get('codelength', '')};"
        ).encode())
    return h.hexdigest()


# -------------------------------------------------------------------- run
async def _run_tenant(host: str, port: int, lines: list[dict],
                      mode: str, pace: float) -> list[dict]:
    client = await GatewayClient.connect(host, port)
    try:
        if mode == "closed":
            rows: list[dict] = []
            for line in lines:
                await client.send(line)
                row = await client.recv()
                if row is None:
                    break
                rows.append(row)
                if pace > 0:
                    await asyncio.sleep(pace)
            rows.extend(await client.drain_to_eof())
            return rows
        for line in lines:
            await client.send(line)
            if pace > 0:
                await asyncio.sleep(pace)
        return await client.drain_to_eof()
    finally:
        await client.close()


async def run_traffic(host: str, port: int,
                      cfg: TrafficConfig) -> dict:
    """Send ``cfg``'s schedule at a gateway; reduce to a report dict.

    One connection per tenant, all tenants concurrent.  The report
    carries per-tenant sent/accept/reject/completed counts and
    digests, plus the combined digest the soak reproducibility test
    compares across runs.
    """
    schedules = build_schedule(cfg)
    pace = (cfg.pace_seconds / max(1, cfg.jobs)
            if cfg.pace_seconds > 0 else 0.0)
    t0 = time.perf_counter()
    results = await asyncio.gather(*[
        _run_tenant(host, port, lines, cfg.mode, pace)
        for _, lines in sorted(schedules.items())
    ])
    wall = time.perf_counter() - t0
    per_tenant = {}
    all_rows: list[dict] = []
    for tenant, rows in zip(sorted(schedules), results):
        statuses: dict[str, int] = {}
        for r in rows:
            statuses[r.get("status", "?")] = \
                statuses.get(r.get("status", "?"), 0) + 1
        per_tenant[tenant] = {
            "sent": len(schedules[tenant]),
            "responses": len(rows),
            "statuses": statuses,
            "digest": sequence_digest(rows),
        }
        all_rows.extend(rows)
    completed = sum(1 for r in all_rows if r.get("status") == "completed")
    return {
        "seed": cfg.seed,
        "mode": cfg.mode,
        "jobs": cfg.jobs,
        "chaos_share": cfg.chaos_share,
        "wall_seconds": round(wall, 3),
        "throughput_jobs_per_s": round(completed / wall, 2) if wall else 0.0,
        "per_tenant": per_tenant,
        "digest": sequence_digest(all_rows),
    }


def run_soak(cfg: TrafficConfig, *, shards: int = 2,
             queue_depth: int = 4096) -> dict:
    """Start a gateway, run ``cfg`` against it, return the report.

    The gateway runs with ``virtual_time=True`` and a soak-deep queue,
    so every admission decision is deterministic (see module docs).
    """
    from repro.service.gateway import Gateway, GatewayConfig

    async def _soak() -> dict:
        gw = Gateway(GatewayConfig(
            shards=shards, queue_depth=queue_depth,
            tenant_rate=50.0, tenant_burst=20.0, virtual_time=True,
        ))
        await gw.start("127.0.0.1", 0)
        try:
            report = await run_traffic("127.0.0.1", gw.port, cfg)
        finally:
            await gw.stop()
        report["gateway"] = dict(gw.stats)
        report["shards"] = shards
        return report

    return asyncio.run(_soak())


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="seeded soak against an in-process gateway",
    )
    ap.add_argument("--seconds", type=float, default=30.0,
                    help="wall-clock spread of the send schedule")
    ap.add_argument("--jobs", type=int, default=None,
                    help="override the request count (default: 4/s)")
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--chaos", action="store_true",
                    help="inject random worker faults into a share of jobs")
    ap.add_argument("--mode", choices=("open", "closed"), default="open")
    ap.add_argument("--report", metavar="PATH", default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)

    cfg = TrafficConfig(
        seed=args.seed,
        jobs=args.jobs if args.jobs is not None
             else max(1, int(args.seconds * 4)),
        mode=args.mode,
        chaos_share=0.15 if args.chaos else 0.0,
        pace_seconds=args.seconds,
    )
    report = run_soak(cfg, shards=args.shards)
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    print(f"soak: {report['jobs']} request(s) over "
          f"{report['wall_seconds']}s, "
          f"{report['throughput_jobs_per_s']} completed/s, "
          f"digest {report['digest'][:16]}")
    for tenant, row in sorted(report["per_tenant"].items()):
        print(f"  {tenant}: sent {row['sent']}, {row['statuses']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
