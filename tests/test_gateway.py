"""End-to-end tests for the asyncio gateway (docs/service.md).

Everything here runs a real gateway on a real loopback socket via the
traffic harness's :class:`~tests.traffic.GatewayClient`; there is no
mocked transport.  The suite pins the gateway's four contracts:

* **bit-identity** — results streamed over the wire equal synchronous
  :class:`~repro.service.service.JobService` execution exactly, for
  the full conformance-family × seed grid (including a graph with
  isolated vertices, shipped via the inline ``edges`` source);
* **deterministic admission** — backpressure (paused gateway) and
  rate limiting (virtual time) reject exactly the same lines on every
  run, as structured rows;
* **isolation** — one tenant's invalid/over-limit/chaotic traffic
  never changes another tenant's results; a mid-stream disconnect
  never takes down the server;
* **affinity** — rendezvous routing lands repeated jobs (and deltas on
  their base) on the shard whose cache owns the result.
"""

import asyncio
import json
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.graph.generators import planted_partition
from repro.service.cache import cache_key, graph_digest
from repro.service.delta import Delta
from repro.service.gateway import (
    REJECT_BACKPRESSURE,
    REJECT_INVALID,
    REJECT_RATE_LIMIT,
    Gateway,
    GatewayConfig,
    graph_to_wire,
)
from repro.service.jobs import JobSpec
from repro.service.jobsfile import load_jobs
from repro.service.service import JobService

from tests.test_engine_conformance import FAMILIES, SEEDS
from tests.traffic import GatewayClient, TrafficConfig, run_soak



def gw_run(coro_factory, **cfg):
    """Start a gateway, run ``coro_factory(gw)`` against it, stop it."""

    async def _main():
        gw = Gateway(GatewayConfig(**cfg))
        await gw.start("127.0.0.1", 0)
        try:
            return await coro_factory(gw), gw
        finally:
            await gw.stop()

    return asyncio.run(_main())


def _vec_line(graph, seed, **extra):
    line = graph_to_wire(graph)
    line.update({"engine": "vectorized", "workers": 1, "seed": seed})
    line.update(extra)
    return line


def _by_id(rows):
    return {r["id"]: r for r in rows if "id" in r}


# ---------------------------------------------------------------------------
# bit-identity against synchronous JobService execution
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_conformance_grid_matches_sync_service(self):
        """Full family × seed grid: streamed results == sync results."""
        cases = [(fam, seed) for fam in FAMILIES for seed in SEEDS]
        graphs = {c: FAMILIES[c[0]](c[1])[0] for c in cases}

        sync = {}
        with JobService(cache_entries=0) as svc:
            for c, g in graphs.items():
                spec = JobSpec(graph=g, engine="vectorized", workers=1,
                               seed=c[1])
                sync[c] = svc.run_batch([spec])[0]
                assert sync[c].ok, sync[c].error

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            for (fam, seed) in cases:
                await client.send(_vec_line(
                    graphs[(fam, seed)], seed,
                    id=f"{fam}-{seed}", return_modules=True,
                ))
            return await client.drain_to_eof()

        rows, _ = gw_run(_drive, shards=2, cache_entries=0)
        got = _by_id(rows)
        assert len(got) == len(cases)
        for (fam, seed) in cases:
            row = got[f"{fam}-{seed}"]
            ref = sync[(fam, seed)]
            assert row["status"] == "completed", (fam, seed, row)
            assert row["num_modules"] == ref.num_modules, (fam, seed)
            assert row["codelength"] == ref.codelength, (fam, seed)
            assert row["levels"] == ref.levels
            assert row["modules"] == ref.modules.tolist(), (fam, seed)

    def test_pathological_graph_survives_the_wire(self):
        """The inline ``edges`` source preserves isolated vertices: the
        graph the gateway rebuilds digests identically to the sender's
        (an edge-list file hop would have dropped vertices 12..13)."""
        g, _ = FAMILIES["pathological"](0)
        wire = graph_to_wire(g)
        assert wire["edges"]["num_vertices"] == g.num_vertices

        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as fh:
            fh.write(json.dumps(
                {**wire, "engine": "vectorized", "workers": 1}) + "\n")
            path = fh.name
        (spec,) = load_jobs(path)
        assert graph_digest(spec.graph) == graph_digest(g)
        assert spec.graph.num_vertices == g.num_vertices


# ---------------------------------------------------------------------------
# deterministic admission: backpressure and rate limits
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_backpressure_rejects_exactly_the_overflow(self):
        """Paused gateway, queue depth 3, 5 identical jobs → the last 2
        reject with a structured backpressure row; resume completes the
        first 3.  Runs twice: same ids rejected both times."""
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            gw.pause()
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            for i in range(5):
                await client.send(_vec_line(g, 0, id=f"j{i}"))
            rejects = await client.recv_many(2)
            gw.resume()
            rest = await client.drain_to_eof()
            return rejects, rest

        for _ in range(2):
            (rejects, rest), gw = gw_run(_drive, shards=1, queue_depth=3)
            assert [r["id"] for r in rejects] == ["j3", "j4"]
            assert all(r["status"] == "rejected"
                       and r["reject"] == REJECT_BACKPRESSURE
                       for r in rejects)
            assert sorted(r["id"] for r in rest) == ["j0", "j1", "j2"]
            assert all(r["status"] == "completed" for r in rest)
            assert gw.stats["accepted"] == 3 and gw.stats["rejected"] == 2

    def test_rate_limit_is_a_pure_function_of_stamps(self):
        """Virtual time: the accept/reject sequence depends only on the
        ``at`` stamps, identically across gateway instances."""
        g, _ = FAMILIES["undirected"](0)
        stamps = [0.0, 0.5, 1.0, 1.2, 3.0]

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            for i, at in enumerate(stamps):
                await client.send(_vec_line(g, 0, id=f"j{i}", at=at))
            return await client.drain_to_eof()

        expected = ["completed", "rejected", "completed", "rejected",
                    "completed"]
        for _ in range(2):
            rows, _gw = gw_run(_drive, shards=1, tenant_rate=1.0,
                               tenant_burst=1.0, virtual_time=True)
            got = _by_id(rows)
            assert [got[f"j{i}"]["status"]
                    for i in range(len(stamps))] == expected
            for i in (1, 3):
                assert got[f"j{i}"]["reject"] == REJECT_RATE_LIMIT

    def test_rejection_rows_never_raise(self):
        """Malformed lines over the socket answer structurally and the
        connection keeps serving (the jobsfile error paths, live)."""
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send_raw(b"this is not json\n")
            await client.send({"id": "nosource", "engine": "vectorized",
                               "workers": 1})
            await client.send({**graph_to_wire(g), "id": "unknownkey",
                               "bogus": 1})
            await client.send(_vec_line(g, 0, id="badtau", tau=7.0))
            await client.send(_vec_line(g, 0, id="ok"))
            return await client.drain_to_eof()

        rows, gw = gw_run(_drive, shards=2)
        assert len(rows) == 5
        got = _by_id(rows)
        for rid in ("nosource", "unknownkey", "badtau"):
            assert got[rid]["status"] == "rejected"
            assert got[rid]["reject"] == REJECT_INVALID
            assert got[rid]["error"]
        assert got["ok"]["status"] == "completed"
        nojson = [r for r in rows if "id" not in r]
        assert len(nojson) == 1 and "not JSON" in nojson[0]["error"]


# ---------------------------------------------------------------------------
# isolation
# ---------------------------------------------------------------------------
class TestIsolation:
    def test_one_bad_tenant_never_touches_another(self):
        """mallory floods invalid and over-limit lines; alice's batch
        completes with results identical to a clean run."""
        g, _ = FAMILIES["weighted"](1)

        async def _alice(port):
            client = await GatewayClient.connect("127.0.0.1", port)
            for i in range(3):
                await client.send(_vec_line(
                    g, i, tenant="alice", id=f"a{i}", at=float(i),
                    return_modules=True,
                ))
            return await client.drain_to_eof()

        async def _mallory(port):
            client = await GatewayClient.connect("127.0.0.1", port)
            for i in range(10):
                # all at t=0: burst 1 admits one, the rest rate-limit
                await client.send(_vec_line(
                    g, 0, tenant="mallory", id=f"m{i}", at=0.0,
                ))
            await client.send({"tenant": "mallory", "id": "mbad",
                               "at": 0.0, "nonsense": True})
            return await client.drain_to_eof()

        async def _drive(gw):
            return await asyncio.gather(_alice(gw.port), _mallory(gw.port))

        (alice_rows, mallory_rows), _gw = gw_run(
            _drive, shards=2, tenant_rate=1.0, tenant_burst=1.0,
            virtual_time=True,
        )
        a = _by_id(alice_rows)
        assert [a[f"a{i}"]["status"] for i in range(3)] == ["completed"] * 3
        m = _by_id(mallory_rows)
        assert m["mbad"]["reject"] == REJECT_INVALID
        m_status = [m[f"m{i}"]["status"] for i in range(10)]
        assert m_status.count("rejected") == 9  # burst of 1 admits one

        # alice's payloads equal a clean sync run — mallory changed nothing
        with JobService(cache_entries=0) as svc:
            for i in range(3):
                ref = svc.run_batch(
                    [JobSpec(graph=g, engine="vectorized", workers=1,
                             seed=i)])[0]
                assert a[f"a{i}"]["modules"] == ref.modules.tolist()
                assert a[f"a{i}"]["codelength"] == ref.codelength

    def test_mid_stream_disconnect_leaves_server_alive(self):
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            rude = await GatewayClient.connect("127.0.0.1", gw.port)
            for i in range(4):
                await rude.send(_vec_line(g, i, id=f"r{i}"))
            first = await rude.recv()            # one streamed result...
            await rude.close()                   # ...then vanish
            await asyncio.sleep(0.05)
            polite = await GatewayClient.connect("127.0.0.1", gw.port)
            await polite.send(_vec_line(g, 0, id="p0"))
            rows = await polite.drain_to_eof()
            return first, rows

        (first, rows), gw = gw_run(_drive, shards=2)
        assert first["status"] == "completed"
        assert _by_id(rows)["p0"]["status"] == "completed"

    def test_truncated_tail_line_is_dropped_not_fatal(self):
        """A connection dying mid-line loses only the partial line:
        complete lines before it are answered, the tail is counted."""
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 0, id="whole"))
            await client.send_raw(b'{"planted": {"communi')  # no newline
            client.write_eof()
            rows = []
            while True:
                row = await client.recv()
                if row is None:
                    return rows
                rows.append(row)

        rows, gw = gw_run(_drive, shards=1)
        assert [r["id"] for r in rows] == ["whole"]
        assert rows[0]["status"] == "completed"
        assert gw.stats["truncated_lines"] == 1

    def test_interleaved_tenants_on_one_connection(self):
        """Two tenants multiplexed on one socket: every response echoes
        the right tenant and id, rate limits stay per-tenant."""
        g, _ = FAMILIES["undirected"](1)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            for i in range(3):
                for tenant in ("t1", "t2"):
                    await client.send(_vec_line(
                        g, i, tenant=tenant, id=f"{tenant}-{i}", at=0.0,
                    ))
            return await client.drain_to_eof()

        rows, _gw = gw_run(_drive, shards=2, tenant_rate=1.0,
                           tenant_burst=2.0, virtual_time=True)
        got = _by_id(rows)
        assert len(got) == 6
        for tenant in ("t1", "t2"):
            statuses = [got[f"{tenant}-{i}"]["status"] for i in range(3)]
            # burst of 2 at t=0: each tenant independently gets 2 in
            assert statuses == ["completed", "completed", "rejected"]
            assert all(got[f"{tenant}-{i}"]["tenant"] == tenant
                       for i in range(3))


# ---------------------------------------------------------------------------
# shard routing and cache affinity
# ---------------------------------------------------------------------------
class TestSharding:
    def test_shard_affinity_cache_hits(self):
        """A repeated job routes to the same shard and hits its cache —
        across connections, which is the point of rendezvous hashing."""
        graphs = [FAMILIES["undirected"](s)[0] for s in range(4)]

        async def _drive(gw):
            first = await GatewayClient.connect("127.0.0.1", gw.port)
            for i, g in enumerate(graphs):
                await first.send(_vec_line(g, 0, id=f"cold{i}"))
            cold = await first.drain_to_eof()
            second = await GatewayClient.connect("127.0.0.1", gw.port)
            for i, g in enumerate(graphs):
                await second.send(_vec_line(g, 0, id=f"warm{i}"))
            warm = await second.drain_to_eof()
            return cold, warm

        (cold, warm), gw = gw_run(_drive, shards=3)
        cold_by, warm_by = _by_id(cold), _by_id(warm)
        shards_used = set()
        for i in range(len(graphs)):
            c, w = cold_by[f"cold{i}"], warm_by[f"warm{i}"]
            assert c["status"] == w["status"] == "completed"
            assert not c["cache_hit"]
            assert w["cache_hit"], i     # same shard owns the result
            assert w["shard"] == c["shard"], i
            assert w["codelength"] == c["codelength"]
            shards_used.add(c["shard"])
        assert len(shards_used) > 1  # rendezvous actually spread them

    def test_routing_matches_rendezvous_on_cache_key(self):
        g, _ = FAMILIES["undirected"](2)
        spec = JobSpec(graph=g, engine="vectorized", workers=1, seed=2)

        async def _drive(gw):
            expect = gw.router.shard_for(cache_key(spec))
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 2, id="x"))
            rows = await client.drain_to_eof()
            return expect, rows

        (expect, rows), _gw = gw_run(_drive, shards=4)
        assert _by_id(rows)["x"]["shard"] == expect


# ---------------------------------------------------------------------------
# live-arrival ingest sessions
# ---------------------------------------------------------------------------
class TestLiveIngest:
    def test_ops_buffer_until_frontier_budget(self):
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 0, session="s", id="base"))
            base = await client.recv()
            await client.send({"session": "s", "id": "op1",
                               "ops": [["add", 0, 1, 1.0]]})
            ack = await client.recv()
            rest = await client.drain_to_eof()
            return base, ack, rest

        (base, ack, rest), gw = gw_run(_drive, shards=2,
                                       frontier_budget=0.95)
        assert base["status"] == "completed" and base["session"] == "s"
        assert ack["status"] == "buffered"
        assert 0.0 < ack["frontier_share"] < 0.95
        assert ack["ops_total"] == 1
        # EOF flushed the buffered ops as one cumulative delta job
        assert len(rest) == 1
        assert rest[0]["status"] == "completed"
        assert rest[0]["session"] == "s"
        assert gw.stats["flushes"] == 1

    def test_budget_crossing_flushes_cumulative_delta_bit_identically(self):
        """Ops that push the dirty frontier past the budget flush as one
        cumulative delta job whose result equals the sync JobService
        running the same base + delta with the same base_key."""
        g, _ = FAMILIES["undirected"](1)
        ops = [["add", 0, 1, 2.0], ["add", 30, 55, 1.0],
               ["remove", 0, 1]]

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 1, session="s", id="base",
                                        return_modules=True))
            base = await client.recv()
            await client.send({"session": "s", "id": "d1", "ops": ops,
                               "return_modules": True})
            flushed = await client.recv()
            await client.send({"session": "s", "close": True})
            rest = await client.drain_to_eof()
            return base, flushed, rest

        (base, flushed, rest), gw = gw_run(_drive, shards=2,
                                           frontier_budget=0.01)
        assert flushed["status"] == "completed"
        assert flushed["session"] == "s"
        assert rest == []  # close with nothing pending adds no job

        base_spec = JobSpec(graph=g, engine="vectorized", workers=1, seed=1)
        delta_spec = JobSpec(
            graph=g, engine="vectorized", workers=1, seed=1,
            delta=Delta.from_json(ops), base_key=cache_key(base_spec),
        )
        with JobService() as svc:
            ref_base = svc.run_batch([base_spec])[0]
            ref = svc.run_batch([delta_spec])[0]
        assert base["modules"] == ref_base.modules.tolist()
        assert flushed["modules"] == ref.modules.tolist()
        assert flushed["codelength"] == ref.codelength
        assert flushed["num_modules"] == ref.num_modules

    def test_closed_session_rejects_further_ops(self):
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 0, session="s", id="base"))
            await client.recv()
            await client.send({"session": "s", "close": True})
            await client.send({"session": "s", "id": "late",
                               "ops": [["add", 0, 1, 1.0]]})
            return await client.drain_to_eof()

        rows, _gw = gw_run(_drive, shards=1, frontier_budget=0.95)
        late = _by_id(rows)["late"]
        assert late["status"] == "rejected"
        assert late["reject"] == REJECT_INVALID

    def test_bad_ops_reject_structurally_and_keep_session(self):
        g, _ = FAMILIES["undirected"](0)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 0, session="s", id="base"))
            await client.recv()
            await client.send({"session": "s", "id": "bad",
                               "ops": [["frobnicate", 0, 1]]})
            bad = await client.recv()
            await client.send({"session": "s", "id": "good",
                               "ops": [["add", 0, 1, 1.0]], "flush": True})
            good = await client.recv()
            return bad, good

        (bad, good), _gw = gw_run(_drive, shards=1, frontier_budget=0.95)
        assert bad["status"] == "rejected" and bad["reject"] == REJECT_INVALID
        assert good["status"] == "completed" and good["session"] == "s"


# ---------------------------------------------------------------------------
# soak reproducibility (the traffic harness's own contract)
# ---------------------------------------------------------------------------
class TestChaosJobs:
    def test_parallel_chaos_job_completes_and_connection_eofs(self):
        """A faulted parallel job runs through a shard and the client
        still sees EOF promptly.

        Regression coverage for two gateway-process hazards that only a
        real multiprocessing job exposes: forking pool workers from a
        shard thread can deadlock the child on an inherited lock, and a
        forked worker inherits the client's socket fd — holding the
        connection open after the server half-closes it, so
        ``drain_to_eof`` hangs forever.  Shard pools therefore default
        to the ``spawn`` start method; this test is what caught fork.
        """
        g, _ = planted_partition(3, 12, 0.45, 0.02, seed=2)

        async def _drive(gw):
            client = await GatewayClient.connect("127.0.0.1", gw.port)
            await client.send(_vec_line(g, 0, id="clean"))
            line = graph_to_wire(g)
            line.update({
                "engine": "parallel", "workers": 2, "seed": 0,
                "fault_plan": "random:5:1", "worker_timeout": 2.0,
                "id": "chaos",
            })
            await client.send(line)
            rows = await asyncio.wait_for(client.drain_to_eof(), timeout=90)
            await client.close()
            return rows

        rows, _ = gw_run(_drive, shards=1, cache_entries=0)
        got = _by_id(rows)
        assert got["clean"]["status"] == "completed"
        assert got["chaos"]["status"] == "completed", got["chaos"]
        # the faulted run is bit-identical to a clean one by the
        # supervisor's replay contract — same partition either way
        ref = JobSpec(graph=g, engine="parallel", workers=2, seed=0)
        with JobService(cache_entries=0, start_method="spawn") as svc:
            (clean,) = svc.run_batch([ref])
        assert got["chaos"]["num_modules"] == clean.num_modules
        assert got["chaos"]["codelength"] == clean.codelength


class TestSoak:
    def test_soak_is_reproducible_at_equal_seed(self):
        cfg = TrafficConfig(seed=11, jobs=24, mode="open",
                            invalid_share=0.1, repeat_share=0.3)
        a = run_soak(cfg, shards=2)
        b = run_soak(cfg, shards=2)
        assert a["digest"] == b["digest"]
        for tenant in a["per_tenant"]:
            assert (a["per_tenant"][tenant]["digest"]
                    == b["per_tenant"][tenant]["digest"]), tenant
            assert (a["per_tenant"][tenant]["statuses"]
                    == b["per_tenant"][tenant]["statuses"]), tenant
        assert a["gateway"]["accepted"] == b["gateway"]["accepted"]
        assert a["gateway"]["rejected"] == b["gateway"]["rejected"]

    def test_soak_distinguishes_seeds(self):
        a = run_soak(TrafficConfig(seed=1, jobs=16), shards=2)
        b = run_soak(TrafficConfig(seed=2, jobs=16), shards=2)
        assert a["digest"] != b["digest"]

    def test_closed_loop_matches_open_loop_admission(self):
        """Virtual-time stamps decide admission, not the arrival
        process: closed-loop and open-loop runs of the same schedule
        agree on every per-tenant digest."""
        a = run_soak(TrafficConfig(seed=3, jobs=18, mode="open"), shards=2)
        b = run_soak(TrafficConfig(seed=3, jobs=18, mode="closed"),
                     shards=2)
        assert a["digest"] == b["digest"]


# ---------------------------------------------------------------------------
# CLI front door
# ---------------------------------------------------------------------------
class TestServeListen:
    def test_cli_listen_serves_a_job(self, tmp_path):
        g, _ = FAMILIES["undirected"](0)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--listen", "127.0.0.1:0", "--shards", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "gateway listening on" in banner, banner
            port = int(banner.split("127.0.0.1:")[1].split()[0])

            async def _roundtrip():
                client = await GatewayClient.connect("127.0.0.1", port)
                await client.send(_vec_line(g, 0, id="cli"))
                return await client.drain_to_eof()

            rows = asyncio.run(_roundtrip())
            assert _by_id(rows)["cli"]["status"] == "completed"
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_listen_arg_validation(self):
        res = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--listen", "nocolon"],
            capture_output=True, text=True,
        )
        assert res.returncode == 2
        assert "HOST:PORT" in res.stderr
        res = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            capture_output=True, text=True,
        )
        assert res.returncode == 2
        assert "--jobs or --listen" in res.stderr
