"""Tests for the tracing-span layer (repro.obs.spans)."""

import json
import threading
import time

import pytest

from repro.core.infomap import run_infomap
from repro.core.multicore import run_infomap_multicore
from repro.graph.generators import ring_of_cliques
from repro.obs import spans
from repro.obs.spans import (
    NOOP_SPAN,
    self_time_by_name,
    set_current_core,
    to_chrome_trace,
    trace_span,
    write_chrome_trace,
)


@pytest.fixture
def tracing():
    """Enable span recording for the test, restore a clean slate after."""
    spans.clear()
    spans.enable()
    set_current_core(0)
    yield spans
    spans.disable()
    spans.clear()
    set_current_core(0)


class TestSpanRecording:
    def test_disabled_by_default_records_nothing(self):
        assert not spans.is_enabled()
        with trace_span("x"):
            pass
        assert spans.events() == []

    def test_disabled_returns_shared_noop_singleton(self):
        # the no-op fast path: no allocation, no clock read
        assert trace_span("a") is NOOP_SPAN
        assert trace_span("b", level=3) is trace_span("c")

    def test_basic_span_recorded(self, tracing):
        with trace_span("findbest", level=2, pass_=3):
            pass
        (ev,) = spans.events()
        assert ev.name == "findbest"
        assert ev.args == {"level": 2, "pass_": 3}
        assert ev.dur_us >= 0.0
        assert ev.depth == 0

    def test_nesting_depth_and_self_time(self, tracing):
        with trace_span("outer"):
            time.sleep(0.002)
            with trace_span("inner"):
                time.sleep(0.005)
        by_name = {e.name: e for e in spans.events()}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        # child time is subtracted from the parent's self time
        assert by_name["outer"].self_us < by_name["outer"].dur_us
        assert (
            by_name["outer"].self_us
            <= by_name["outer"].dur_us - by_name["inner"].dur_us + 1.0
        )
        assert by_name["inner"].self_us == pytest.approx(
            by_name["inner"].dur_us
        )

    def test_per_core_attribution(self, tracing):
        set_current_core(3)
        with trace_span("sweep"):
            pass
        set_current_core(0)
        (ev,) = spans.events()
        assert ev.core == 3

    def test_core_kwarg_overrides_thread_core(self, tracing):
        with trace_span("sweep", core=7):
            pass
        (ev,) = spans.events()
        assert ev.core == 7

    def test_threads_have_independent_stacks(self, tracing):
        def worker():
            set_current_core(9)
            with trace_span("worker-span"):
                pass

        t = threading.Thread(target=worker)
        with trace_span("main-span"):
            t.start()
            t.join()
        cores = {e.name: e.core for e in spans.events()}
        assert cores["worker-span"] == 9
        assert cores["main-span"] == 0


class TestChromeTraceExport:
    def test_schema(self, tracing, tmp_path):
        with trace_span("outer", level=0):
            with trace_span("inner"):
                pass
        path = write_chrome_trace(tmp_path / "t.trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == 2
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            for key in ("name", "ts", "dur", "pid", "tid", "args"):
                assert key in ev
            assert ev["args"]["self_us"] >= 0.0

    def test_engine_run_produces_loadable_trace(self, tracing, tmp_path):
        g, _ = ring_of_cliques(4, 5)
        run_infomap(g, backend="softhash")
        doc = to_chrome_trace()
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"infomap.run", "pagerank", "findbest", "findbest.sweep"} <= names
        # every pass span carries level/pass attribution
        fb = [e for e in doc["traceEvents"] if e["name"] == "findbest"]
        assert all("level" in e["args"] and "pass_" in e["args"] for e in fb)

    def test_multicore_run_attributes_cores(self, tracing):
        g, _ = ring_of_cliques(6, 5)
        run_infomap_multicore(g, num_cores=2, backend="softhash")
        sweep_tids = {
            e["tid"]
            for e in to_chrome_trace()["traceEvents"]
            if e["name"] == "findbest.sweep"
        }
        assert sweep_tids == {0, 1}

    def test_self_time_aggregation(self, tracing):
        with trace_span("a"):
            with trace_span("b"):
                time.sleep(0.002)
        agg = self_time_by_name(to_chrome_trace())
        assert set(agg) == {"a", "b"}
        assert agg["b"]["self_us"] >= 2000.0
        assert agg["a"]["self_us"] < agg["a"]["total_us"]
