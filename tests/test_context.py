"""Unit tests for the per-core HardwareContext."""

import pytest

from repro.sim.branch import BranchSite
from repro.sim.cache import SetAssociativeCache
from repro.sim.context import HardwareContext
from repro.sim.counters import Counters
from repro.sim.machine import baseline_machine


class TestAttribution:
    def test_use_switches_target(self):
        ctx = HardwareContext(baseline_machine())
        a, b = Counters(), Counters()
        ctx.use(a)
        ctx.instr(int_alu=5)
        ctx.use(b)
        ctx.instr(int_alu=7)
        assert a.int_alu == 5 and b.int_alu == 7

    def test_instr_classes(self):
        ctx = HardwareContext(baseline_machine())
        c = Counters()
        ctx.use(c)
        ctx.instr(int_alu=1, float_alu=2, load=3, store=4, branch=5, asa=6)
        assert c.instructions == 21

    def test_asa_busy(self):
        ctx = HardwareContext(baseline_machine())
        c = Counters()
        ctx.use(c)
        ctx.asa_busy(42.0)
        assert c.asa_busy_cycles == 42.0


class TestFastMode:
    def test_branch_agg_uses_steady_state(self):
        ctx = HardwareContext(baseline_machine("fast"))
        c = Counters()
        ctx.use(c)
        ctx.branch_agg(BranchSite.HASH_KEYCMP, 1000, 500)
        assert c.branch_mispredict == pytest.approx(500.0)

    def test_loop_back_low_rate(self):
        ctx = HardwareContext(baseline_machine("fast"))
        c = Counters()
        ctx.use(c)
        ctx.branch_agg(BranchSite.LOOP_BACK, 1000, 999)
        assert c.branch_mispredict == pytest.approx(10.0)

    def test_branch_agg_ignores_empty(self):
        ctx = HardwareContext(baseline_machine("fast"))
        c = Counters()
        ctx.use(c)
        ctx.branch_agg(BranchSite.HASH_CHAIN, 0, 0)
        assert c.branch_mispredict == 0

    def test_mem_agg_splits_levels(self):
        ctx = HardwareContext(baseline_machine("fast"))
        c = Counters()
        ctx.use(c)
        ctx.mem_agg(100, footprint_bytes=128 * 1024)  # spans L1+L2
        assert c.l1_hit > 0 and c.l2_hit > 0
        assert c.l1_hit + c.l2_hit + c.l3_hit + c.mem_access == pytest.approx(100)

    def test_no_detailed_structures(self):
        ctx = HardwareContext(baseline_machine("fast"))
        assert ctx.predictor is None and ctx.caches is None


class TestDetailedMode:
    def test_branch_event_drives_predictor(self):
        ctx = HardwareContext(baseline_machine("detailed"))
        c = Counters()
        ctx.use(c)
        for _ in range(200):
            ctx.branch_event(BranchSite.HASH_KEYCMP, True)
        assert c.branch_mispredict <= 2  # learned quickly

    def test_mem_event_classifies_hits(self):
        ctx = HardwareContext(baseline_machine("detailed"))
        c = Counters()
        ctx.use(c)
        ctx.mem_event(0x1000)
        ctx.mem_event(0x1000)
        assert c.mem_access == 1  # cold miss
        assert c.l1_hit == 1

    def test_twobit_predictor_option(self):
        from repro.sim.branch import TwoBitPredictor

        m = baseline_machine("detailed").with_(predictor="twobit")
        ctx = HardwareContext(m)
        assert isinstance(ctx.predictor, TwoBitPredictor)

    def test_shared_l3(self):
        m = baseline_machine("detailed")
        shared = SetAssociativeCache(m.l3)
        a = HardwareContext(m, core_id=0, shared_l3=shared)
        b = HardwareContext(m, core_id=1, shared_l3=shared)
        ca, cb = Counters(), Counters()
        a.use(ca)
        b.use(cb)
        a.mem_event(0x40)
        b.mem_event(0x40)
        assert ca.mem_access == 1  # cold in everything
        assert cb.l3_hit == 1  # other core's private levels miss, L3 hits

    def test_dispatchers_fall_back_to_aggregate(self):
        ctx = HardwareContext(baseline_machine("detailed"))
        c = Counters()
        ctx.use(c)
        ctx.branches(BranchSite.SORT_CMP, 100, 50)
        assert c.branch_mispredict == pytest.approx(50.0)
        ctx.mem(10, footprint_bytes=1024)
        assert c.l1_hit == pytest.approx(10.0)

    def test_dispatchers_consume_real_events(self):
        ctx = HardwareContext(baseline_machine("detailed"))
        c = Counters()
        ctx.use(c)
        ctx.branches(BranchSite.SORT_CMP, 3, 3, outcomes=[True, True, True])
        ctx.mem(2, footprint_bytes=0, addrs=[0x80, 0x80])
        assert c.l1_hit == 1 and c.mem_access == 1

    def test_memory_layouts_distinct_per_core(self):
        m = baseline_machine("detailed")
        a = HardwareContext(m, core_id=0)
        b = HardwareContext(m, core_id=3)
        assert a.layout.node_addr(0) != b.layout.node_addr(0)
