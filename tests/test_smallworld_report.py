"""Tests for the small-world/SBM generators and the hardware report."""

import numpy as np
import pytest

from repro.graph.smallworld import stochastic_block_model, watts_strogatz
from repro.sim.report import (
    cycle_breakdown_table,
    hardware_report,
    instruction_mix_table,
)


class TestWattsStrogatz:
    def test_ring_lattice_no_rewire(self):
        g = watts_strogatz(20, k=4, p_rewire=0.0)
        deg = np.asarray(g.out_degree())
        assert np.all(deg == 4)
        assert g.num_edges == 40

    def test_rewire_changes_structure(self):
        a = watts_strogatz(50, k=4, p_rewire=0.0)
        b = watts_strogatz(50, k=4, p_rewire=0.5, seed=1)
        assert not np.array_equal(a.indices, b.indices)

    def test_edge_count_roughly_preserved(self):
        g = watts_strogatz(100, k=6, p_rewire=0.3, seed=2)
        assert 250 <= g.num_edges <= 300

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=3)
        with pytest.raises(ValueError):
            watts_strogatz(4, k=4)
        with pytest.raises(ValueError):
            watts_strogatz(10, k=4, p_rewire=2.0)

    def test_no_cam_overflow_on_homogeneous_graph(self):
        """Small worlds have no hubs: ASA never overflows at level 0."""
        from repro.core.infomap import run_infomap

        g = watts_strogatz(300, k=6, p_rewire=0.05, seed=3)
        r = run_infomap(g, backend="asa", max_levels=1)
        assert r.overflowed_vertices == 0


class TestSBM:
    def test_sizes_and_labels(self):
        g, labels = stochastic_block_model(
            [10, 20, 30], np.full((3, 3), 0.05) + np.eye(3) * 0.4, seed=0
        )
        assert g.num_vertices == 60
        assert np.bincount(labels).tolist() == [10, 20, 30]

    def test_assortative_structure_detected(self):
        from repro.core.infomap import run_infomap
        from repro.quality import normalized_mutual_information

        p = np.full((3, 3), 0.01) + np.eye(3) * 0.4
        g, labels = stochastic_block_model([30, 30, 30], p, seed=1)
        r = run_infomap(g)
        assert normalized_mutual_information(r.modules, labels) > 0.9

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], np.zeros((3, 3)))
        asym = np.array([[0.5, 0.1], [0.2, 0.5]])
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], asym)
        with pytest.raises(ValueError):
            stochastic_block_model([5, 0], np.eye(2) * 0.5)
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], np.eye(2) * 1.5)

    def test_zero_probability_blocks_disconnected(self):
        p = np.eye(2) * 0.8
        g, labels = stochastic_block_model([10, 10], p, seed=2)
        src, dst, _ = g.edge_array()
        assert np.all(labels[src] == labels[dst])


class TestHardwareReport:
    def _run(self):
        from repro.core.infomap import run_infomap
        from repro.graph.generators import planted_partition

        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        return run_infomap(g, backend="softhash")

    def test_cycle_breakdown_table(self):
        r = self._run()
        t = cycle_breakdown_table(r.stats, r.machine)
        out = t.render()
        assert "TOTAL" in out
        assert "findbest_hash" in out

    def test_instruction_mix_sums_to_total(self):
        r = self._run()
        t = instruction_mix_table(r.stats.findbest)
        assert "100.0%" in t.render()

    def test_full_report(self):
        r = self._run()
        report = hardware_report(r.stats, r.machine, label="test")
        assert "Headline metrics" in report
        assert "FindBest CPI" in report
        assert "Hash share" in report
