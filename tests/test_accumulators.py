"""Backend-equivalence and accounting tests for the accumulators.

The central correctness contract: ``plain``, ``softhash`` and ``asa`` are
functionally interchangeable — identical key→sum maps for any operation
stream — and differ only in hardware cost accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.accum import BACKENDS, make_accumulator
from repro.accum.softhash import SoftwareHashAccumulator
from repro.sim.context import HardwareContext
from repro.sim.counters import Counters, KernelStats
from repro.sim.machine import asa_machine, baseline_machine


def _instrumented(backend: str, fidelity: str = "fast"):
    machine = (asa_machine if backend == "asa" else baseline_machine)(fidelity)
    ctx = HardwareContext(machine)
    ks = KernelStats()
    acc = make_accumulator(backend, ctx, ks.findbest_hash, ks.findbest_overflow)
    return acc, ks, ctx


def _drive(acc, ops):
    """Run one begin/accumulate*/items/finish cycle; return the result map."""
    acc.begin(len(ops))
    for k, v in ops:
        acc.accumulate(k, v)
    pairs = dict(acc.items())
    acc.finish()
    return pairs


class TestFactory:
    def test_backend_names(self):
        assert set(BACKENDS) == {"plain", "softhash", "robinhood", "asa"}

    def test_plain_needs_no_context(self):
        acc = make_accumulator("plain")
        assert _drive(acc, [(1, 2.0)]) == {1: 2.0}

    def test_instrumented_requires_context(self):
        with pytest.raises(ValueError):
            make_accumulator("softhash")

    def test_unknown_backend(self):
        ctx = HardwareContext(baseline_machine())
        with pytest.raises(ValueError, match="unknown backend"):
            make_accumulator("cuckoo", ctx, Counters())


class TestEquivalenceProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 40), st.floats(0.01, 5.0)),
                min_size=0,
                max_size=120,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_all_backends_agree(self, vertex_streams):
        accs = {}
        for b in BACKENDS:
            accs[b] = (
                make_accumulator(b)
                if b == "plain"
                else _instrumented(b)[0]
            )
        for ops in vertex_streams:
            results = {b: _drive(a, ops) for b, a in accs.items()}
            ref = results["plain"]
            for b in ("softhash", "asa"):
                assert set(results[b]) == set(ref), b
                for k in ref:
                    assert results[b][k] == pytest.approx(ref[k], rel=1e-12), b

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 60), st.floats(0.01, 5.0)),
            min_size=0,
            max_size=150,
        )
    )
    def test_asa_exact_even_when_overflowing(self, ops):
        """A tiny 8-entry CAM forces the overflow path constantly; results
        must still be exact."""
        ctx = HardwareContext(asa_machine(cam_bytes=128))  # 8 entries
        ks = KernelStats()
        acc = make_accumulator("asa", ctx, ks.findbest_hash, ks.findbest_overflow)
        ref = {}
        for k, v in ops:
            ref[k] = ref.get(k, 0.0) + v
        got = _drive(acc, ops)
        assert set(got) == set(ref)
        for k in ref:
            assert got[k] == pytest.approx(ref[k], rel=1e-12)


class TestSoftHashModel:
    def test_rehash_grows_buckets(self):
        acc, ks, _ = _instrumented("softhash")
        acc.begin(0)
        for k in range(100):
            acc.accumulate(k, 1.0)
        assert acc._buckets >= 128  # grew from 8 by doubling
        acc.items()
        acc.finish()

    def test_double_probe_costs_more_than_single(self):
        ops = [(k % 7, 1.0) for k in range(200)]
        costs = {}
        for dp in (True, False):
            machine = baseline_machine()
            ctx = HardwareContext(machine)
            ks = KernelStats()
            acc = SoftwareHashAccumulator(ctx, ks.findbest_hash, double_probe=dp)
            _drive(acc, ops)
            costs[dp] = ks.findbest_hash.instructions
        assert costs[True] > costs[False] * 1.2

    def test_instruction_counts_identical_across_fidelity(self):
        ops = [(k % 13, 0.5) for k in range(300)]
        instr = {}
        for fid in ("fast", "detailed"):
            acc, ks, _ = _instrumented("softhash", fid)
            _drive(acc, ops)
            instr[fid] = ks.findbest_hash.instructions
        assert instr["fast"] == pytest.approx(instr["detailed"])

    def test_fast_and_detailed_mispredicts_same_ballpark(self):
        ops = [((k * 7919) % 97, 0.5) for k in range(4000)]
        miss = {}
        for fid in ("fast", "detailed"):
            acc, ks, _ = _instrumented("softhash", fid)
            _drive(acc, ops)
            miss[fid] = ks.findbest_hash.branch_mispredict
        assert miss["detailed"] > 0
        ratio = miss["fast"] / miss["detailed"]
        assert 0.3 < ratio < 3.0

    def test_counters_accumulate_across_tables(self):
        acc, ks, _ = _instrumented("softhash")
        _drive(acc, [(1, 1.0)])
        first = ks.findbest_hash.instructions
        _drive(acc, [(1, 1.0)])
        assert ks.findbest_hash.instructions == pytest.approx(2 * first)


class TestASAAccounting:
    def test_asa_instructions_counted(self):
        acc, ks, _ = _instrumented("asa")
        _drive(acc, [(k, 1.0) for k in range(10)])
        assert ks.findbest_hash.asa == 11  # 10 accumulates + 1 gather

    def test_busy_cycles_accrue(self):
        acc, ks, _ = _instrumented("asa")
        _drive(acc, [(k, 1.0) for k in range(10)])
        assert ks.findbest_hash.asa_busy_cycles > 0

    def test_no_overflow_means_no_overflow_cost(self):
        acc, ks, _ = _instrumented("asa")
        _drive(acc, [(k, 1.0) for k in range(10)])
        assert ks.findbest_overflow.instructions == 0
        assert acc.overflowed_vertices == 0

    def test_overflow_charged_separately(self):
        acc, ks, _ = _instrumented("asa")
        _drive(acc, [(k, 1.0) for k in range(600)])  # > 512 CAM entries
        assert ks.findbest_overflow.instructions > 0
        assert acc.overflowed_vertices == 1

    def test_begin_requires_drained_cam(self):
        acc, ks, _ = _instrumented("asa")
        acc.begin(0)
        acc.accumulate(1, 1.0)
        with pytest.raises(RuntimeError):
            acc.begin(0)

    def test_far_fewer_instructions_than_softhash(self):
        ops = [(k % 20, 1.0) for k in range(1000)]
        soft, sks, _ = _instrumented("softhash")
        asa, aks, _ = _instrumented("asa")
        _drive(soft, ops)
        _drive(asa, ops)
        assert (
            aks.findbest_hash_total.instructions
            < 0.5 * sks.findbest_hash_total.instructions
        )

    def test_no_hash_branch_mispredicts(self):
        ops = [(k % 20, 1.0) for k in range(1000)]
        asa, aks, _ = _instrumented("asa")
        _drive(asa, ops)
        # no overflow -> only the overflow-emptiness check branch
        assert aks.findbest_hash.branch_mispredict < 5
