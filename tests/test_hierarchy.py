"""Tests for hierarchical Infomap (the nested map equation)."""

import numpy as np
import pytest

from repro.core.flow import FlowNetwork
from repro.core.hierarchy import (
    HModule,
    _boundary_flows,
    _index_cost,
    _leaf_cost,
    hierarchical_codelength,
    run_infomap_hierarchical,
)
from repro.graph.build import from_edge_array
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.quality import normalized_mutual_information


def nested_rings(num_groups=4, cliques_per_group=4, clique_size=5):
    """num_groups super-groups, each a ring of cliques, weakly chained."""
    src_l, dst_l = [], []
    offset = 0
    per_group = cliques_per_group * clique_size
    for _ in range(num_groups):
        g, _ = ring_of_cliques(cliques_per_group, clique_size)
        s, d, _w = g.edge_array()
        keep = s < d
        src_l.append(s[keep] + offset)
        dst_l.append(d[keep] + offset)
        offset += per_group
    for b in range(num_groups):
        src_l.append(np.array([b * per_group]))
        dst_l.append(np.array([((b + 1) % num_groups) * per_group + 1]))
    n = num_groups * per_group
    g = from_edge_array(
        np.concatenate(src_l), np.concatenate(dst_l), num_vertices=n
    )
    truth_top = np.repeat(np.arange(num_groups), per_group)
    truth_leaf = np.repeat(
        np.arange(num_groups * cliques_per_group), clique_size
    )
    return g, truth_top, truth_leaf


class TestBoundaryFlows:
    def test_whole_graph_has_no_boundary(self):
        g, _ = ring_of_cliques(3, 4)
        net = FlowNetwork.from_graph(g)
        enter, exit_, flow = _boundary_flows(net, np.arange(g.num_vertices))
        assert enter == pytest.approx(0.0)
        assert exit_ == pytest.approx(0.0)
        assert flow == pytest.approx(1.0)

    def test_single_vertex(self):
        g, _ = ring_of_cliques(2, 3)
        net = FlowNetwork.from_graph(g)
        enter, exit_, flow = _boundary_flows(net, np.array([0]))
        assert enter == pytest.approx(float(net.node_in[0]))
        assert exit_ == pytest.approx(float(net.node_out[0]))


class TestCosts:
    def test_index_cost_zero_for_single_word(self):
        # one submodule, no exit: codebook is deterministic -> zero bits
        assert _index_cost(0.0, [0.25]) == pytest.approx(0.0)

    def test_index_cost_positive_when_uncertain(self):
        assert _index_cost(0.1, [0.1, 0.1]) > 0.0


class TestHierarchicalRun:
    def test_recovers_nested_structure(self):
        g, truth_top, truth_leaf = nested_rings()
        r = run_infomap_hierarchical(g)
        n = g.num_vertices
        assert r.max_depth == 2
        assert normalized_mutual_information(
            r.top_assignment(n), truth_top
        ) == pytest.approx(1.0)
        assert normalized_mutual_information(
            r.leaf_assignment(n), truth_leaf
        ) == pytest.approx(1.0)

    def test_hierarchy_never_worse_than_two_level(self):
        for seed in (1, 2):
            g, _ = planted_partition(6, 20, 0.4, 0.02, seed=seed)
            r = run_infomap_hierarchical(g)
            assert r.codelength <= r.two_level_codelength + 1e-9

    def test_flat_structure_stays_flat(self):
        """A single ring of cliques has no super-structure worth a level
        beyond (possibly) one grouping; leaves must match the cliques."""
        g, truth = ring_of_cliques(6, 5)
        r = run_infomap_hierarchical(g)
        leaf = r.leaf_assignment(g.num_vertices)
        assert normalized_mutual_information(leaf, truth) == pytest.approx(1.0)

    def test_codelength_matches_tree_evaluation(self):
        g, *_ = nested_rings()
        net = FlowNetwork.from_graph(g)
        r = run_infomap_hierarchical(g)
        assert r.codelength == pytest.approx(
            hierarchical_codelength(r.root_children, net)
        )

    def test_assignment_covers_every_vertex(self):
        g, _ = planted_partition(5, 15, 0.4, 0.03, seed=3)
        r = run_infomap_hierarchical(g)
        leaf = r.leaf_assignment(g.num_vertices)
        assert leaf.min() >= 0
        assert len(np.unique(leaf)) == r.num_leaf_modules

    def test_min_module_size_blocks_splitting(self):
        g, _ = planted_partition(4, 10, 0.6, 0.02, seed=4)
        r = run_infomap_hierarchical(g, min_module_size=10**6)
        # no downward splits allowed; depth comes only from grouping
        for top in r.root_children:
            for leaf in top.leaves():
                assert leaf.is_leaf

    def test_hmodule_helpers(self):
        leaf = HModule(np.array([0, 1]), 0.1, 0.1, 0.2)
        parent = HModule(np.array([0, 1, 2]), 0.1, 0.1, 0.3, children=[leaf])
        assert leaf.is_leaf and not parent.is_leaf
        assert parent.depth() == 2
        assert parent.leaves() == [leaf]
