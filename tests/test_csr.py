"""Tests for the CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.build import coalesce_arcs, from_edge_array, from_edges
from repro.graph.csr import CSRGraph

from tests.strategies import directedness, edge_lists


def triangle():
    return from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=3)


class TestConstruction:
    def test_undirected_mirrors_arcs(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_arcs == 6
        assert g.num_edges == 3

    def test_directed_keeps_arcs(self):
        g = from_edges([(0, 1), (1, 2)], directed=True, num_vertices=3)
        assert g.num_arcs == 2
        assert g.num_edges == 2

    def test_duplicate_edges_merge_weights(self):
        g = from_edges([(0, 1, 2.0), (0, 1, 3.0)], num_vertices=2)
        idx, w = g.out_neighbors(0)
        assert list(idx) == [1]
        assert w[0] == pytest.approx(5.0)

    def test_self_loop_stored_once_undirected(self):
        g = from_edges([(0, 0, 1.5), (0, 1)], num_vertices=2)
        assert g.num_edges == 2
        idx, w = g.out_neighbors(0)
        assert set(idx.tolist()) == {0, 1}

    def test_isolated_vertices(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.out_degree(4) == 0

    def test_weights_must_be_positive(self):
        with pytest.raises(ValueError):
            from_edges([(0, 1, 0.0)], num_vertices=2)

    def test_bad_vertex_id(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([0]), np.array([5]), num_vertices=2)

    def test_negative_vertex_id(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([-1]), np.array([0]), num_vertices=2)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([0]), np.array([1, 2]))


class TestAccessors:
    def test_out_neighbors(self):
        g = triangle()
        idx, w = g.out_neighbors(0)
        assert set(idx.tolist()) == {1, 2}
        assert np.all(w == 1.0)

    def test_degrees(self):
        g = from_edges([(0, 1), (0, 2), (0, 3)], num_vertices=4)
        assert g.out_degree(0) == 3
        assert g.out_degree(1) == 1
        assert list(g.out_degree()) == [3, 1, 1, 1]

    def test_strengths_undirected_symmetric(self):
        g = from_edges([(0, 1, 2.0), (1, 2, 3.0)], num_vertices=3)
        assert np.allclose(g.out_strength(), g.in_strength())
        assert g.out_strength()[1] == pytest.approx(5.0)

    def test_directed_in_out(self):
        g = from_edges([(0, 1, 2.0), (2, 1, 3.0)], directed=True, num_vertices=3)
        assert g.out_strength()[0] == pytest.approx(2.0)
        assert g.in_strength()[1] == pytest.approx(5.0)
        idx, w = g.in_neighbors(1)
        assert set(idx.tolist()) == {0, 2}

    def test_total_weight(self):
        g = triangle()
        assert g.total_weight == pytest.approx(6.0)  # both arc directions

    def test_edge_array_round_trip(self):
        g = from_edges([(0, 1, 2.0), (1, 2, 0.5)], num_vertices=3)
        src, dst, w = g.edge_array()
        g2 = from_edge_array(src, dst, w, num_vertices=3, input_is_arcs=True)
        assert np.array_equal(g2.indptr, g.indptr)
        assert np.array_equal(g2.indices, g.indices)
        assert np.allclose(g2.weights, g.weights)

    def test_arcs_iterator(self):
        g = from_edges([(0, 1, 2.0)], num_vertices=2)
        arcs = sorted(g.arcs())
        assert arcs == [(0, 1, 2.0), (1, 0, 2.0)]


class TestSubgraph:
    def test_induced_subgraph(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
        sub = g.subgraph(np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # (0,1), (1,2) survive

    def test_empty_subgraph(self):
        g = triangle()
        sub = g.subgraph(np.array([0]))
        assert sub.num_vertices == 1
        assert sub.num_arcs == 0


class TestInvariants:
    def test_validate_passes_on_wellformed(self):
        triangle().validate()

    def test_validate_directed(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], directed=True, num_vertices=3)
        g.validate()

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(
                indptr=np.array([1, 2]), indices=np.array([0]),
                weights=np.array([1.0]),
            )

    def test_indptr_monotone(self):
        with pytest.raises(ValueError):
            CSRGraph(
                indptr=np.array([0, 2, 1]),
                indices=np.array([0]),
                weights=np.array([1.0]),
            )

    @settings(max_examples=30, deadline=None)
    @given(edge_lists(max_vertex=15, max_size=60), directedness)
    def test_property_construction_invariants(self, edges, directed):
        g = from_edges(edges, num_vertices=16, directed=directed)
        g.validate()
        # total weight equals coalesced arc sum
        assert g.total_weight == pytest.approx(float(g.weights.sum()))
        # degrees sum to arc count
        assert int(np.asarray(g.out_degree()).sum()) == g.num_arcs


class TestCoalesce:
    def test_merges_duplicates(self):
        src = np.array([0, 0, 1], dtype=np.int64)
        dst = np.array([1, 1, 0], dtype=np.int64)
        w = np.array([1.0, 2.0, 4.0])
        s, d, ww = coalesce_arcs(src, dst, w, 2)
        assert len(s) == 2
        assert ww[np.lexsort((d, s))].tolist() == [3.0, 4.0]

    def test_empty(self):
        e = np.empty(0, np.int64)
        s, d, w = coalesce_arcs(e, e, np.empty(0), 5)
        assert len(s) == 0
