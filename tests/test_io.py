"""Tests for SNAP-style edge-list I/O."""

import io

import numpy as np
import pytest

from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.build import from_edges


class TestRead:
    def test_basic(self):
        text = io.StringIO("# comment\n0 1\n1 2\n")
        g, ids = read_edge_list(text)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert list(ids) == [0, 1, 2]

    def test_relabel_sparse_ids(self):
        text = io.StringIO("100 200\n200 300\n")
        g, ids = read_edge_list(text)
        assert g.num_vertices == 3
        assert list(ids) == [100, 200, 300]

    def test_weights(self):
        text = io.StringIO("0 1 2.5\n")
        g, _ = read_edge_list(text)
        _, w = g.out_neighbors(0)
        assert w[0] == pytest.approx(2.5)

    def test_percent_comments_and_blank_lines(self):
        text = io.StringIO("% header\n\n0 1\n\n")
        g, _ = read_edge_list(text)
        assert g.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("justonetoken\n"))

    def test_directed(self):
        g, _ = read_edge_list(io.StringIO("0 1\n"), directed=True)
        assert g.directed
        assert g.num_arcs == 1

    def test_no_relabel(self):
        g, ids = read_edge_list(io.StringIO("0 5\n"), relabel=False)
        assert g.num_vertices == 6
        assert len(ids) == 6


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        g = from_edges([(0, 1, 2.0), (1, 2, 0.5), (2, 2, 1.0)], num_vertices=3)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2, _ = read_edge_list(path)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        assert np.allclose(g2.weights, g.weights)

    def test_write_without_weights(self, tmp_path):
        g = from_edges([(0, 1, 2.0)], num_vertices=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path, weights=False)
        g2, _ = read_edge_list(path)
        _, w = g2.out_neighbors(0)
        assert w[0] == pytest.approx(1.0)

    def test_directed_round_trip(self, tmp_path):
        g = from_edges([(0, 1), (1, 0), (1, 2)], directed=True, num_vertices=3)
        path = tmp_path / "d.txt"
        write_edge_list(g, path)
        g2, _ = read_edge_list(path, directed=True)
        assert g2.num_arcs == 3

    def test_name_from_path(self, tmp_path):
        g = from_edges([(0, 1)], num_vertices=2)
        path = tmp_path / "mynet.txt"
        write_edge_list(g, path)
        g2, _ = read_edge_list(path)
        assert g2.name == "mynet"
