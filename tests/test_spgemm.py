"""Tests for the SpGEMM substrate (ASA's original workload)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.spgemm.gustavson import spgemm
from repro.spgemm.matrix import CSRMatrix, random_sparse_matrix

from tests.strategies import seeds


class TestCSRMatrix:
    def test_from_to_dense_round_trip(self):
        d = np.array([[1.0, 0, 2.0], [0, 0, 0], [0, -3.0, 0]])
        m = CSRMatrix.from_dense(d)
        assert m.shape == (3, 3)
        assert m.nnz == 3
        assert np.array_equal(m.to_dense(), d)

    def test_from_triplets_sums_duplicates(self):
        m = CSRMatrix.from_triplets(
            np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0]), (2, 2)
        )
        assert m.nnz == 1
        assert m.to_dense()[0, 1] == pytest.approx(5.0)

    def test_row_accessor(self):
        m = CSRMatrix.from_dense(np.array([[0, 1.0], [2.0, 0]]))
        cols, vals = m.row(1)
        assert list(cols) == [0] and vals[0] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([1, 1]), np.array([0]), np.array([1.0]), 2)
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), 2)

    def test_random_matrix_properties(self):
        m = random_sparse_matrix(50, 30, 0.05, seed=3)
        assert m.shape == (50, 30)
        assert m.nnz > 0
        m2 = random_sparse_matrix(50, 30, 0.05, seed=3)
        assert np.array_equal(m.indices, m2.indices)  # deterministic

    def test_powerlaw_rows_skewed(self):
        m = random_sparse_matrix(200, 200, 0.02, seed=4, powerlaw_rows=True)
        lens = np.diff(m.indptr)
        assert lens.max() > 4 * max(1.0, lens.mean())

    def test_density_validation(self):
        with pytest.raises(ValueError):
            random_sparse_matrix(5, 5, 0.0)


class TestSpGEMM:
    def test_matches_dense_reference(self):
        a = random_sparse_matrix(40, 30, 0.1, seed=1)
        b = random_sparse_matrix(30, 20, 0.1, seed=2)
        ref = a.to_dense() @ b.to_dense()
        for backend in ("plain", "softhash", "asa"):
            r = spgemm(a, b, backend=backend)
            assert np.allclose(r.matrix.to_dense(), ref, atol=1e-10), backend

    def test_dimension_mismatch(self):
        a = random_sparse_matrix(4, 5, 0.5, seed=0)
        b = random_sparse_matrix(4, 5, 0.5, seed=0)
        with pytest.raises(ValueError):
            spgemm(a, b)

    def test_identity(self):
        eye = CSRMatrix.from_dense(np.eye(6))
        a = random_sparse_matrix(6, 6, 0.4, seed=5)
        r = spgemm(a, eye)
        assert np.allclose(r.matrix.to_dense(), a.to_dense())

    def test_empty_product(self):
        a = CSRMatrix.from_dense(np.zeros((3, 3)))
        b = CSRMatrix.from_dense(np.zeros((3, 3)))
        r = spgemm(a, b)
        assert r.matrix.nnz == 0 and r.flops == 0

    def test_asa_faster_than_softhash(self):
        """The accelerator's original claim: ASA beats software hashing on
        SpGEMM hash accumulation."""
        a = random_sparse_matrix(150, 150, 0.05, seed=6)
        b = random_sparse_matrix(150, 150, 0.05, seed=7)
        soft = spgemm(a, b, backend="softhash")
        asa = spgemm(a, b, backend="asa")
        assert asa.hash_seconds < soft.hash_seconds / 2
        assert np.allclose(asa.matrix.to_dense(), soft.matrix.to_dense())

    def test_flop_count(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0, 1.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0, 0], [1.0, 1.0]]))
        r = spgemm(a, b)
        # row 0: A has 2 nnz -> rows of B with 1 + 2 products = 3
        # row 1: A has 1 nnz -> B row 1 has 2 products
        assert r.flops == 5

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_property_matches_scipy(self, seed):
        import scipy.sparse as sp

        a = random_sparse_matrix(25, 20, 0.15, seed=seed)
        b = random_sparse_matrix(20, 15, 0.15, seed=seed + 1)
        r = spgemm(a, b, backend="asa")
        ref = (
            sp.csr_matrix(a.to_dense()) @ sp.csr_matrix(b.to_dense())
        ).toarray()
        assert np.allclose(r.matrix.to_dense(), ref, atol=1e-10)

    def test_overflow_path_on_dense_rows(self):
        """A matrix row producing > 512 distinct output columns exercises
        CAM overflow inside SpGEMM."""
        n = 700
        a = CSRMatrix.from_triplets(
            np.zeros(3, np.int64), np.arange(3, dtype=np.int64),
            np.ones(3), (1, 3),
        )
        b = CSRMatrix.from_triplets(
            np.repeat(np.arange(3, dtype=np.int64), n // 3 + 1)[: n],
            np.arange(n, dtype=np.int64) % n,
            np.ones(n), (3, n),
        )
        r = spgemm(a, b, backend="asa")
        assert r.stats.findbest_overflow.instructions > 0
        ref = a.to_dense() @ b.to_dense()
        assert np.allclose(r.matrix.to_dense(), ref)
