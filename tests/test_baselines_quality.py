"""Tests for the Louvain/modularity baselines and the quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.louvain import louvain
from repro.baselines.modularity import modularity
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.quality.ari import adjusted_rand_index
from repro.quality.f1 import pairwise_f1
from repro.quality.nmi import mutual_information, normalized_mutual_information


class TestModularity:
    def test_single_community_zero(self):
        g, _ = ring_of_cliques(1, 4)
        assert modularity(g, np.zeros(4, dtype=int)) == pytest.approx(0.0)

    def test_known_two_triangles(self):
        # two triangles joined by one edge; Q of the natural split
        g = from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            num_vertices=6,
        )
        labels = np.array([0, 0, 0, 1, 1, 1])
        # m=7 edges; intra=6/7 of arc weight; degree sums 7 per side
        expected = 6 / 7 - 2 * (7 / 14) ** 2
        assert modularity(g, labels) == pytest.approx(expected)

    def test_good_partition_beats_bad(self):
        g, truth = ring_of_cliques(5, 5)
        rng = np.random.default_rng(0)
        bad = rng.integers(0, 5, size=g.num_vertices)
        assert modularity(g, truth) > modularity(g, bad)

    def test_directed_rejected(self):
        g = from_edges([(0, 1)], directed=True, num_vertices=2)
        with pytest.raises(ValueError):
            modularity(g, np.zeros(2, dtype=int))

    def test_label_length_check(self):
        g, _ = ring_of_cliques(2, 3)
        with pytest.raises(ValueError):
            modularity(g, np.zeros(3, dtype=int))


class TestLouvain:
    def test_ring_of_cliques(self):
        g, truth = ring_of_cliques(6, 5)
        r = louvain(g)
        assert r.num_modules == 6
        assert normalized_mutual_information(r.modules, truth) > 0.99

    def test_planted_partition(self):
        g, truth = planted_partition(5, 30, 0.4, 0.01, seed=2)
        r = louvain(g)
        assert normalized_mutual_information(r.modules, truth) > 0.9

    def test_modularity_positive_on_structured_graph(self):
        g, _ = planted_partition(4, 25, 0.4, 0.02, seed=1)
        r = louvain(g)
        assert r.modularity > 0.3

    def test_deterministic_unseeded(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        a = louvain(g)
        b = louvain(g)
        assert np.array_equal(a.modules, b.modules)

    def test_seeded_reproducible(self):
        g, _ = planted_partition(4, 20, 0.4, 0.02, seed=1)
        a = louvain(g, seed=5)
        b = louvain(g, seed=5)
        assert np.array_equal(a.modules, b.modules)

    def test_directed_rejected(self):
        g = from_edges([(0, 1)], directed=True, num_vertices=2)
        with pytest.raises(ValueError):
            louvain(g)

    def test_resolution_limit_on_large_ring(self):
        """The resolution limit (Fortunato & Barthélemy 2007, paper §I):
        on a long ring of 5-cliques modularity optimization merges adjacent
        cliques while Infomap recovers every clique."""
        from repro.core.infomap import run_infomap

        g, truth = ring_of_cliques(30, 5)
        rl = louvain(g)
        ri = run_infomap(g)
        assert ri.num_modules == 30
        assert rl.num_modules < 30  # Louvain merges (15 pairs)


class TestNMI:
    def test_identical_partitions(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([7, 7, 3, 3])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 3000)
        b = rng.integers(0, 5, 3000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_degenerate_single_cluster(self):
        a = np.zeros(5, dtype=int)
        assert normalized_mutual_information(a, a) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([0, 1]), np.array([0]))

    def test_mutual_information_nonnegative(self):
        a = np.array([0, 1, 0, 1, 2])
        b = np.array([1, 1, 0, 0, 2])
        assert mutual_information(a, b) >= -1e-12

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=2, max_size=60))
    def test_symmetry(self, labels):
        a = np.asarray(labels)
        rng = np.random.default_rng(1)
        b = rng.integers(0, 3, len(a))
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=2, max_size=60))
    def test_bounds(self, labels):
        a = np.asarray(labels)
        rng = np.random.default_rng(2)
        b = rng.integers(0, 4, len(a))
        assert 0.0 <= normalized_mutual_information(a, b) <= 1.0


class TestARI:
    def test_identical(self):
        a = np.array([0, 0, 1, 1])
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 4, 4000)
        b = rng.integers(0, 4, 4000)
        assert abs(adjusted_rand_index(a, b)) < 0.05


class TestPairwiseF1:
    def test_identical(self):
        a = np.array([0, 0, 1, 1, 2])
        assert pairwise_f1(a, a) == pytest.approx(1.0)

    def test_all_singletons_vs_clustered(self):
        pred = np.arange(6)
        truth = np.array([0, 0, 0, 1, 1, 1])
        assert pairwise_f1(pred, truth) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        pred = np.array([0, 0, 1, 1])
        truth = np.array([0, 0, 0, 1])
        f1 = pairwise_f1(pred, truth)
        assert 0.0 < f1 < 1.0

    def test_both_all_singletons(self):
        a = np.arange(5)
        assert pairwise_f1(a, a) == 1.0
