"""Cross-engine conformance suite.

The repo ships four Infomap engines that all minimize the same map
equation over the same flow model:

======================  ===============================================
engine                  schedule
======================  ===============================================
``sequential``          per-vertex greedy, immediate apply, hw counters
``vectorized``          batch-synchronous numpy sweep (single rank)
``multicore``           BSP propose/commit on P *simulated* cores
``parallel``            same BSP schedule on P *real* processes
``parallel+faultplan``  ``parallel`` under seeded injected worker
                        faults (kill/hang/slow/corrupt) — recovery must
                        be invisible (see tests/test_fault_injection.py)
======================  ===============================================

This suite pins the contract between them:

* every engine's codelength agrees within a small factor on each graph
  family (undirected / directed / weighted / pathological);
* every engine recovers planted community structure (NMI / ARI floors);
* ``parallel(P=k)`` is **bit-identical** to ``multicore(P=k)`` at the
  same seed — the two backends share the driver in
  :mod:`repro.core.bsp`, so any divergence is a real bug;
* the shard-restricted sweep ``Workspace.best_moves(verts=...)`` equals
  the full sweep filtered to the shard (the property the BSP engines'
  correctness rests on);
* every engine is deterministic at a fixed seed (hypothesis property),
  and any seeded :class:`~repro.core.faults.FaultPlan` preserves that
  determinism — faulty runs land bit-identical to fault-free ones.

See ``docs/testing.md`` for how this matrix fits the wider test tiers.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.faults import FaultPlan
from repro.core.flow import FlowNetwork
from repro.core.infomap import run_infomap
from repro.core.multicore import run_infomap_multicore
from repro.core.parallel import run_infomap_parallel
from repro.core.vectorized import Workspace, run_infomap_vectorized
from repro.graph.build import from_edge_array, from_edges
from repro.graph.generators import planted_partition
from repro.quality.ari import adjusted_rand_index
from repro.quality.nmi import normalized_mutual_information

from tests.strategies import small_seeds

# ---------------------------------------------------------------------------
# graph families


def _undirected(seed):
    return planted_partition(4, 20, 0.45, 0.02, seed=seed)


def _directed(seed):
    """Planted communities with every edge materialized as two arcs.

    The flow solution matches the undirected family, but the run takes
    the directed code path end to end (teleportation, separate in/out
    CSR, transpose pair arrays in the vectorized sweep).
    """
    g, truth = planted_partition(4, 20, 0.45, 0.02, seed=seed)
    src, dst, w = g.edge_array()
    return (
        from_edge_array(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            np.concatenate([w, w]),
            num_vertices=g.num_vertices,
            directed=True,
        ),
        truth,
    )


def _weighted(seed):
    """Planted communities where weights carry most of the signal:
    intra-community edges weigh 4x inter-community ones."""
    g, truth = planted_partition(4, 20, 0.40, 0.03, seed=seed)
    src, dst, w = g.edge_array()
    intra = truth[src] == truth[dst]
    w = np.where(intra, 2.0, 0.5)
    return (
        from_edge_array(src, dst, w, num_vertices=g.num_vertices),
        truth,
    )


def _pathological(seed):
    """Self-loops, multi-edges, and isolated vertices around two small
    communities.  No planted truth — only agreement is checked."""
    rng = np.random.default_rng(seed)
    edges = [(0, 0, 2.0), (5, 5, 1.0), (0, 1), (0, 1), (1, 2, 3.0)]
    for block in (range(0, 6), range(6, 12)):
        block = list(block)
        for i in block:
            for j in block:
                if i < j and rng.random() < 0.8:
                    edges.append((i, j))
    edges.append((2, 8, 0.2))  # single weak bridge
    return from_edges(edges, num_vertices=14), None  # 12..13 isolated


FAMILIES = {
    "undirected": _undirected,
    "directed": _directed,
    "weighted": _weighted,
    "pathological": _pathological,
}

# ---------------------------------------------------------------------------
# engines — uniform (graph, seed) -> result interface

ENGINES = {
    "sequential": lambda g, seed: run_infomap(
        g, backend="softhash", shuffle_seed=seed
    ),
    "vectorized": lambda g, seed: run_infomap_vectorized(g, seed=seed),
    "multicore": lambda g, seed: run_infomap_multicore(
        g, num_cores=2, seed=seed
    ),
    "parallel": lambda g, seed: run_infomap_parallel(
        g, workers=2, seed=seed
    ),
    # the parallel engine under a seeded random fault plan: two injected
    # worker failures per run, which the supervisor must recover without
    # perturbing the partition (so every grid assertion below holds
    # unchanged for this column)
    "parallel+faultplan": lambda g, seed: run_infomap_parallel(
        g, workers=2, seed=seed,
        fault_plan=FaultPlan.random(seed=seed, workers=2, faults=2),
        worker_timeout=1.0,
    ),
    # the real engine under the capacity-bounded accumulation strategy
    # (repro.core.accumulate): bit-identical to the reduceat default by
    # contract, so every grid assertion holds unchanged for this column
    "parallel+bounded": lambda g, seed: run_infomap_parallel(
        g, workers=2, seed=seed, accumulator="bounded"
    ),
}

SEEDS = (0, 1)


def _results(family, seed):
    g, truth = FAMILIES[family](seed)
    return {name: run(g, seed) for name, run in ENGINES.items()}, g, truth


# ---------------------------------------------------------------------------
# codelength agreement across the full grid


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_engines_agree_on_codelength(family, seed):
    results, g, _ = _results(family, seed)
    lengths = {name: r.codelength for name, r in results.items()}
    for name, r in results.items():
        assert np.isfinite(r.codelength), name
        assert len(r.modules) == g.num_vertices, name
        # dense labels in [0, num_modules)
        assert set(np.unique(r.modules)) == set(range(r.num_modules)), name
    lo, hi = min(lengths.values()), max(lengths.values())
    assert hi <= lo * 1.10 + 1e-9, f"codelength spread too wide: {lengths}"


# ---------------------------------------------------------------------------
# quality floors against planted truth


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "family", ["undirected", "directed", "weighted"]
)
def test_engines_recover_planted_truth(family, seed):
    results, _, truth = _results(family, seed)
    for name, r in results.items():
        nmi = normalized_mutual_information(r.modules, truth)
        ari = adjusted_rand_index(r.modules, truth)
        assert nmi > 0.9, f"{name}: NMI {nmi:.3f}"
        assert ari > 0.8, f"{name}: ARI {ari:.3f}"


# ---------------------------------------------------------------------------
# parallel(P) is bit-identical to multicore(P): the tentpole guarantee


@pytest.mark.parametrize("seed", (0, 1, 7))
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_parallel_bit_identical_to_multicore(workers, seed):
    g, _ = _undirected(seed)
    rm = run_infomap_multicore(g, num_cores=workers, seed=seed)
    rp = run_infomap_parallel(g, workers=workers, seed=seed)
    assert np.array_equal(rp.modules, rm.modules)
    assert rp.codelength == rm.codelength
    assert rp.num_modules == rm.num_modules
    assert rp.levels == rm.levels


@pytest.mark.parametrize("family", ["directed", "weighted", "pathological"])
def test_parallel_bit_identical_all_families(family):
    g, _ = FAMILIES[family](3)
    rm = run_infomap_multicore(g, num_cores=2, seed=3)
    rp = run_infomap_parallel(g, workers=2, seed=3)
    assert np.array_equal(rp.modules, rm.modules)
    assert rp.codelength == rm.codelength


@pytest.mark.parametrize("accumulator", ("bounded", "auto"))
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_parallel_bit_identical_to_multicore_under_accumulator(
    family, accumulator
):
    # re-pin the tentpole guarantee under the capacity-bounded
    # accumulation strategies: same BSP driver, same commit stream, so
    # the strategy must not perturb simulated-vs-real bit-identity —
    # and neither run may drift from the reduceat default
    g, _ = FAMILIES[family](4)
    rm = run_infomap_multicore(g, num_cores=2, seed=4,
                               accumulator=accumulator)
    rp = run_infomap_parallel(g, workers=2, seed=4,
                              accumulator=accumulator)
    assert np.array_equal(rp.modules, rm.modules)
    assert rp.codelength == rm.codelength
    base = run_infomap_parallel(g, workers=2, seed=4)
    assert np.array_equal(rp.modules, base.modules)
    assert rp.codelength == base.codelength


def test_parallel_bit_identical_with_chunked_rounds():
    # chunked shards exercise multi-round passes (several barriers per
    # pass) — the commit order must still match the simulated engine
    g, _ = _undirected(5)
    rm = run_infomap_multicore(g, num_cores=2, seed=5, chunk=16)
    rp = run_infomap_parallel(g, workers=2, seed=5, chunk=16)
    assert np.array_equal(rp.modules, rm.modules)
    assert rp.codelength == rm.codelength


# ---------------------------------------------------------------------------
# shard-restriction parity: best_moves(verts=S) == full sweep filtered to S


@pytest.mark.parametrize("family", ["undirected", "directed", "weighted"])
def test_shard_restricted_sweep_matches_filtered_full_sweep(family):
    g, _ = FAMILIES[family](2)
    net = FlowNetwork.from_graph(g)
    n = net.num_vertices
    ws = Workspace()
    ws.bind(net)
    rng = np.random.default_rng(0)
    module = rng.integers(0, 5, n).astype(np.int64)
    _, module = np.unique(module, return_inverse=True)
    enter, exit_, flow = ws.module_state(module, n)
    fv, ft, fd = ws.best_moves(module, enter, exit_, flow)
    for shard in (
        np.arange(0, n, 2),
        np.arange(n // 3, 2 * n // 3),
        np.array([0, n - 1]),
        np.arange(n),
    ):
        sv, st_, sd = ws.best_moves(module, enter, exit_, flow, verts=shard)
        keep = np.isin(fv, shard)
        assert np.array_equal(sv, fv[keep])
        assert np.array_equal(st_, ft[keep])
        assert np.array_equal(sd, fd[keep])


def test_shard_restricted_sweep_empty_shard():
    g, _ = _undirected(0)
    net = FlowNetwork.from_graph(g)
    n = net.num_vertices
    ws = Workspace()
    ws.bind(net)
    module = np.arange(n, dtype=np.int64)
    enter, exit_, flow = ws.module_state(module, n)
    sv, st_, sd = ws.best_moves(
        module, enter, exit_, flow, verts=np.empty(0, np.int64)
    )
    assert len(sv) == len(st_) == len(sd) == 0


# ---------------------------------------------------------------------------
# dynamic column: a warm refresh is engine-independent
#
# warm_refresh runs the shared BSP schedule with (previous labels, dirty
# frontier) as level-0 inputs, so at equal workers/seed/dirty set the
# partition must be bit-identical across vectorized/multicore/parallel —
# the dynamic extension of the simulated-vs-real guarantee above.  The
# threshold is pinned to 1.0 so a large frontier cannot silently fall
# back to a full rerun (where engines only codelength-agree).


def _warm_inputs(family, seed):
    g, _ = FAMILIES[family](seed)
    labels = run_infomap_multicore(g, num_cores=1, seed=seed).modules
    dirty = np.array([0, 1, g.num_vertices // 2], dtype=np.int64)
    return g, labels, dirty


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_warm_refresh_identical_across_engines(family, seed):
    from repro.core.dynamic import warm_refresh

    g, labels, dirty = _warm_inputs(family, seed)
    results = {
        engine: warm_refresh(
            g, labels, dirty, engine=engine, workers=1, seed=seed,
            full_rerun_threshold=1.0,
        )
        for engine in ("vectorized", "multicore", "parallel")
    }
    ref = results["vectorized"]
    assert not ref.full_rerun
    for engine, r in results.items():
        assert not r.full_rerun, engine
        assert np.array_equal(r.modules, ref.modules), engine
        assert r.codelength == ref.codelength, engine
        assert r.levels == ref.levels, engine
        assert r.touched_vertices == ref.touched_vertices, engine


def test_warm_refresh_multicore_parallel_bit_identical_multiworker():
    from repro.core.dynamic import warm_refresh

    g, labels, dirty = _warm_inputs("undirected", 3)
    rm = warm_refresh(g, labels, dirty, engine="multicore", workers=2,
                      seed=3, full_rerun_threshold=1.0)
    rp = warm_refresh(g, labels, dirty, engine="parallel", workers=2,
                      seed=3, full_rerun_threshold=1.0)
    assert not rm.full_rerun and not rp.full_rerun
    assert np.array_equal(rp.modules, rm.modules)
    assert rp.codelength == rm.codelength
    assert rp.levels == rm.levels


# ---------------------------------------------------------------------------
# engine dispatch: run_infomap(engine=...) matches the direct entry points


def test_dispatch_matches_direct_calls():
    g, _ = _undirected(0)
    rm = run_infomap(g, engine="multicore", workers=2)
    assert np.array_equal(
        rm.modules, run_infomap_multicore(g, num_cores=2).modules
    )
    rp = run_infomap(g, engine="parallel", workers=2)
    assert np.array_equal(
        rp.modules, run_infomap_parallel(g, workers=2).modules
    )


def test_workers_rejected_for_single_rank_engines():
    g, _ = _undirected(0)
    for engine in ("sequential", "vectorized"):
        with pytest.raises(ValueError):
            run_infomap(g, engine=engine, workers=2)


def test_unknown_engine_names_all_four():
    g, _ = _undirected(0)
    with pytest.raises(ValueError, match="parallel"):
        run_infomap(g, engine="bogus")


# ---------------------------------------------------------------------------
# seed determinism: same seed => identical partition, for every engine


@pytest.mark.parametrize(
    "engine", ["sequential", "vectorized", "multicore"]
)
@settings(max_examples=8, deadline=None)
@given(small_seeds)
def test_seed_determinism(engine, seed):
    g, _ = planted_partition(3, 12, 0.5, 0.03, seed=seed % 100)
    run = ENGINES[engine]
    a, b = run(g, seed), run(g, seed)
    assert np.array_equal(a.modules, b.modules)
    assert a.codelength == b.codelength


@settings(max_examples=3, deadline=None)
@given(small_seeds)
def test_seed_determinism_parallel(seed):
    # fewer examples: each one spawns a real worker pool twice
    g, _ = planted_partition(3, 12, 0.5, 0.03, seed=seed % 100)
    a = run_infomap_parallel(g, workers=2, seed=seed)
    b = run_infomap_parallel(g, workers=2, seed=seed)
    assert np.array_equal(a.modules, b.modules)
    assert a.codelength == b.codelength


@settings(max_examples=3, deadline=None)
@given(small_seeds)
def test_seed_determinism_under_any_fault_plan(seed):
    # the chaos half of the determinism contract: ANY seeded FaultPlan
    # preserves seed-determinism — the faulty run is reproducible from
    # (seed, plan) alone AND bit-identical to the fault-free run
    g, _ = planted_partition(3, 12, 0.5, 0.03, seed=seed % 100)
    plan = FaultPlan.random(seed=seed, workers=2, faults=2)
    clean = run_infomap_parallel(g, workers=2, seed=seed)
    a = run_infomap_parallel(
        g, workers=2, seed=seed, fault_plan=plan, worker_timeout=2.0
    )
    b = run_infomap_parallel(
        g, workers=2, seed=seed, fault_plan=plan, worker_timeout=2.0
    )
    assert np.array_equal(a.modules, b.modules)
    assert a.codelength == b.codelength
    assert a.respawns == b.respawns  # even the recovery is reproducible
    assert np.array_equal(a.modules, clean.modules)
    assert a.codelength == clean.codelength
