"""Cross-cutting property tests: the invariants that tie the system together.

These are the load-bearing correctness properties of the reproduction:

1. coarsening preserves the codelength of any partition;
2. every engine optimizes the same objective (codelengths agree within a
   small factor on random structured graphs);
3. the incremental delta algebra matches brute-force recomputation under
   random move sequences (already covered per-move in
   ``test_mapequation_partition``; here: across whole engine runs);
4. graphs with pathologies (self-loops, isolated vertices, multi-edges)
   survive the full pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.flow import FlowNetwork
from repro.core.infomap import run_infomap
from repro.core.mapequation import MapEquation
from repro.core.supernode import convert_to_supernodes
from repro.core.vectorized import run_infomap_vectorized
from repro.graph.build import from_edges
from repro.graph.generators import planted_partition

from tests.strategies import directedness, edge_lists, seeds, small_seeds


def _partition_codelength(net, labels, k):
    src = np.repeat(np.arange(net.num_vertices), np.diff(net.indptr))
    cross = labels[src] != labels[net.indices]
    exit_ = np.bincount(labels[src[cross]], weights=net.arc_flow[cross], minlength=k)
    enter = np.bincount(
        labels[net.indices[cross]], weights=net.arc_flow[cross], minlength=k
    )
    flow = np.bincount(labels, weights=net.node_flow, minlength=k)
    return MapEquation.codelength(enter, exit_, flow, net.node_flow)


class TestCoarseningInvariance:
    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_random_partition_codelength_preserved(self, seed):
        """For ANY partition, the coarse graph's singleton partition has
        the same codelength (modulo the node-visit term, which is supplied
        from the fine level)."""
        rng = np.random.default_rng(seed)
        g, _ = planted_partition(3, 8, 0.5, 0.1, seed=seed % 50)
        net = FlowNetwork.from_graph(g)
        k = int(rng.integers(2, 6))
        labels = rng.integers(0, k, net.num_vertices).astype(np.int64)
        _, dense = np.unique(labels, return_inverse=True)
        kk = int(dense.max()) + 1
        fine_L = _partition_codelength(net, dense, kk)
        coarse = convert_to_supernodes(net, dense.astype(np.int64), kk)
        coarse_L = MapEquation.codelength(
            coarse.node_in, coarse.node_out, coarse.node_flow, net.node_flow
        )
        assert coarse_L == pytest.approx(fine_L, abs=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_flow_conservation_under_coarsening(self, seed):
        rng = np.random.default_rng(seed)
        g, _ = planted_partition(3, 8, 0.5, 0.1, seed=seed % 50)
        net = FlowNetwork.from_graph(g)
        labels = rng.integers(0, 4, net.num_vertices)
        _, dense = np.unique(labels, return_inverse=True)
        kk = int(dense.max()) + 1
        coarse = convert_to_supernodes(net, dense.astype(np.int64), kk)
        assert coarse.arc_flow.sum() == pytest.approx(float(net.arc_flow.sum()))
        assert coarse.node_flow.sum() == pytest.approx(float(net.node_flow.sum()))


class TestEngineAgreement:
    @settings(max_examples=10, deadline=None)
    @given(small_seeds)
    def test_sequential_vs_vectorized_codelength(self, seed):
        g, _ = planted_partition(4, 12, 0.5, 0.05, seed=seed)
        rs = run_infomap(g)
        rv = run_infomap_vectorized(g)
        # same objective, different schedules: within 8 %
        assert rv.codelength <= rs.codelength * 1.08 + 1e-9
        assert rs.codelength <= rv.codelength * 1.08 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(small_seeds)
    def test_found_partition_codelength_is_self_consistent(self, seed):
        """The reported codelength must equal the map equation evaluated
        on the reported partition over the original flow network."""
        g, _ = planted_partition(4, 10, 0.5, 0.05, seed=seed)
        r = run_infomap(g)
        net = FlowNetwork.from_graph(g)
        k = r.num_modules
        direct = _partition_codelength(net, r.modules, k)
        assert r.codelength == pytest.approx(direct, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(small_seeds)
    def test_result_never_worse_than_singleton_start(self, seed):
        # Greedy Infomap starts from singletons and only accepts improving
        # moves, so the singleton codelength is a hard upper bound.  The
        # one-module partition is NOT: on weakly-structured graphs the
        # greedy sweep can settle in a local optimum above it (e.g. this
        # family at seed=599), so we only require staying within a small
        # slack of that trivial solution.
        g, _ = planted_partition(3, 10, 0.5, 0.08, seed=seed)
        r = run_infomap(g)
        net = FlowNetwork.from_graph(g)
        n = net.num_vertices
        singleton_L = _partition_codelength(net, np.arange(n), n)
        one_L = _partition_codelength(net, np.zeros(n, dtype=np.int64), 1)
        assert r.codelength <= singleton_L + 1e-9
        assert r.codelength <= one_L * 1.05


class TestPathologicalGraphs:
    def test_self_loops_survive_pipeline(self):
        g = from_edges(
            [(0, 0, 2.0), (0, 1), (1, 2), (2, 0), (3, 3, 1.0), (3, 2)],
            num_vertices=4,
        )
        r = run_infomap(g, backend="softhash")
        assert len(r.modules) == 4
        assert np.isfinite(r.codelength)

    def test_isolated_vertices(self):
        g = from_edges([(0, 1), (1, 2)], num_vertices=6)
        r = run_infomap(g)
        assert len(r.modules) == 6
        # isolated vertices have zero flow; they stay singleton modules
        assert np.isfinite(r.codelength)

    def test_two_vertex_graph(self):
        g = from_edges([(0, 1)], num_vertices=2)
        r = run_infomap(g)
        assert r.num_modules in (1, 2)

    def test_star_graph(self):
        g = from_edges([(0, i) for i in range(1, 30)], num_vertices=30)
        for backend in ("softhash", "asa"):
            r = run_infomap(g, backend=backend)
            assert np.isfinite(r.codelength)

    def test_multi_edges_coalesce_through_pipeline(self):
        g = from_edges(
            [(0, 1), (0, 1), (1, 2), (1, 2, 3.0), (2, 0)], num_vertices=3
        )
        r = run_infomap(g)
        assert r.num_modules == 1  # dense triangle collapses

    def test_weighted_directed_cycle(self):
        g = from_edges(
            [(0, 1, 5.0), (1, 2, 5.0), (2, 0, 5.0), (2, 3, 0.1),
             (3, 4, 5.0), (4, 5, 5.0), (5, 3, 5.0), (5, 0, 0.1)],
            directed=True, num_vertices=6,
        )
        r = run_infomap(g)
        assert r.num_modules == 2

    @settings(max_examples=20, deadline=None)
    @given(edge_lists(max_vertex=9, max_size=40), directedness)
    def test_arbitrary_small_graphs_never_crash(self, edges, directed):
        g = from_edges(edges, num_vertices=10, directed=directed)
        if g.num_arcs == 0:
            return
        # directed graphs need at least one non-dangling vertex
        r = run_infomap(g, backend="asa")
        assert len(r.modules) == 10
        assert np.isfinite(r.codelength)
        # Greedy starts from singletons and only accepts improving moves,
        # so the singleton-partition codelength is the sound upper bound.
        # (The one-level codelength is NOT: on self-loop-heavy graphs the
        # singleton start already exceeds it and greedy can settle there.)
        net = FlowNetwork.from_graph(g)
        n = net.num_vertices
        singleton_L = _partition_codelength(net, np.arange(n), n)
        assert r.codelength <= singleton_L + 1e-6
