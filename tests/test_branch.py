"""Tests for the branch-predictor models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.branch import (
    BranchSite,
    GSharePredictor,
    StatisticalBranchModel,
    TwoBitPredictor,
    twobit_steady_state_misrate,
)


class TestTwoBit:
    def test_always_taken_learns(self):
        p = TwoBitPredictor()
        for _ in range(100):
            p.record(0, True)
        assert p.mispredicts <= 1
        assert p.lookups == 100

    def test_always_not_taken_learns(self):
        p = TwoBitPredictor()
        for _ in range(100):
            p.record(0, False)
        # initial counter is weakly-taken: at most 2 early misses
        assert p.mispredicts <= 2

    def test_alternating_is_bad(self):
        p = TwoBitPredictor()
        misses = sum(p.record(0, i % 2 == 0) for i in range(200))
        assert misses >= 80  # 2-bit counters thrash on alternation

    def test_sites_independent(self):
        p = TwoBitPredictor()
        for _ in range(50):
            p.record(0, True)
            p.record(1, False)
        assert p.mispredicts <= 3

    def test_reset(self):
        p = TwoBitPredictor()
        p.record(0, True)
        p.reset()
        assert p.lookups == 0 and p.mispredicts == 0 and not p.counters


class TestGShare:
    def test_biased_stream_low_misrate(self):
        g = GSharePredictor()
        misses = sum(g.record(7, True) for _ in range(1000))
        assert misses / 1000 < 0.05

    def test_learns_periodic_pattern(self):
        """gshare exploits history: a period-4 pattern becomes predictable."""
        g = GSharePredictor()
        pattern = [True, True, False, True]
        outcomes = pattern * 500
        misses = sum(g.record(3, t) for t in outcomes)
        # a 2-bit counter alone would miss ~25 %+; gshare should do better
        assert misses / len(outcomes) < 0.15

    def test_random_stream_near_half(self):
        rng = np.random.default_rng(0)
        g = GSharePredictor()
        outcomes = rng.random(4000) < 0.5
        misses = sum(g.record(1, bool(t)) for t in outcomes)
        assert 0.35 < misses / 4000 < 0.6

    def test_reset(self):
        g = GSharePredictor()
        g.record(0, True)
        g.reset()
        assert g.lookups == 0 and g.history == 0


class TestSteadyState:
    def test_extremes(self):
        assert twobit_steady_state_misrate(0.0) == 0.0
        assert twobit_steady_state_misrate(1.0) == 0.0
        assert twobit_steady_state_misrate(0.5) == pytest.approx(0.5)

    def test_symmetry(self):
        for p in (0.1, 0.25, 0.4):
            assert twobit_steady_state_misrate(p) == pytest.approx(
                twobit_steady_state_misrate(1 - p)
            )

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounds(self, p):
        r = twobit_steady_state_misrate(p)
        assert 0.0 <= r <= 0.5

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_matches_simulated_twobit(self, p):
        """Closed form should match a simulated 2-bit counter on iid input."""
        rng = np.random.default_rng(12345)
        pred = TwoBitPredictor()
        n = 20000
        misses = sum(pred.record(0, bool(t)) for t in rng.random(n) < p)
        assert misses / n == pytest.approx(
            twobit_steady_state_misrate(p), abs=0.04
        )


class TestStatisticalModel:
    def test_aggregate_accounting(self):
        m = StatisticalBranchModel()
        m.add(BranchSite.HASH_KEYCMP, 1000, 500)
        assert m.lookups == 1000
        assert m.mispredicts == pytest.approx(500.0)

    def test_loop_site_uses_low_rate(self):
        m = StatisticalBranchModel()
        m.add(BranchSite.LOOP_BACK, 1000, 990)
        assert m.mispredicts == pytest.approx(10.0)

    def test_invalid_aggregate(self):
        m = StatisticalBranchModel()
        with pytest.raises(ValueError):
            m.add(0, 10, 20)
        with pytest.raises(ValueError):
            m.add(0, -1, 0)

    def test_reset(self):
        m = StatisticalBranchModel()
        m.add(0, 10, 5)
        m.reset()
        assert m.lookups == 0
