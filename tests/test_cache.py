"""Tests for the cache-hierarchy models."""

import pytest

from repro.sim.cache import (
    CacheConfig,
    CacheHierarchy,
    SetAssociativeCache,
    StatisticalCacheModel,
)


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(32 * 1024, 8).num_sets == 64

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 8)
        with pytest.raises(ValueError):
            CacheConfig(1000, 3)  # not divisible


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(CacheConfig(1024, 2))
        assert not c.access(0)
        assert c.access(0)
        assert c.access(8)  # same 64B line
        assert c.hits == 2 and c.misses == 1

    def test_lru_eviction(self):
        # 2-way, line 64B, 1024B total -> 8 sets; addresses 0, 512, 1024
        # map to the same set (stride = num_sets * line = 512)
        c = SetAssociativeCache(CacheConfig(1024, 2))
        c.access(0)
        c.access(512)
        c.access(1024)  # evicts line 0 (LRU)
        assert not c.access(0)

    def test_lru_touch_prevents_eviction(self):
        c = SetAssociativeCache(CacheConfig(1024, 2))
        c.access(0)
        c.access(512)
        c.access(0)      # touch: 512 becomes LRU
        c.access(1024)   # evicts 512
        assert c.access(0)
        assert not c.access(512)

    def test_reset(self):
        c = SetAssociativeCache(CacheConfig(1024, 2))
        c.access(0)
        c.reset()
        assert c.hits == 0 and not c.access(0)


class TestHierarchy:
    def _small(self):
        return CacheHierarchy(
            l1=CacheConfig(128, 2),
            l2=CacheConfig(512, 2),
            l3=CacheConfig(2048, 2),
        )

    def test_miss_goes_to_memory(self):
        h = self._small()
        assert h.access(0) == 4

    def test_second_access_l1(self):
        h = self._small()
        h.access(0)
        assert h.access(0) == 1

    def test_l1_eviction_falls_to_l2(self):
        h = self._small()
        # L1: 128B/2-way/64B-line -> 1 set, 2 ways. Three lines thrash L1.
        h.access(0)
        h.access(64)
        h.access(128)  # evicts line 0 from L1, still in L2
        assert h.access(0) == 2

    def test_shared_l3(self):
        shared = SetAssociativeCache(CacheConfig(2048, 2))
        h1 = CacheHierarchy(CacheConfig(128, 2), CacheConfig(512, 2), l3_cache=shared)
        h2 = CacheHierarchy(CacheConfig(128, 2), CacheConfig(512, 2), l3_cache=shared)
        h1.access(0)
        # other core's private levels miss but shared L3 hits
        assert h2.access(0) == 3

    def test_requires_l3(self):
        with pytest.raises(ValueError):
            CacheHierarchy(CacheConfig(128, 2), CacheConfig(512, 2))


class TestStatisticalCache:
    def _m(self):
        return StatisticalCacheModel(
            l1_bytes=32 * 1024, l2_bytes=256 * 1024, l3_bytes=16 * 1024 * 1024
        )

    def test_small_footprint_all_l1(self):
        m = self._m()
        l1, l2, l3, mem = m.add(100, footprint_bytes=1024)
        assert l1 == pytest.approx(100)
        assert l2 == l3 == mem == 0

    def test_l2_sized_footprint(self):
        m = self._m()
        l1, l2, l3, mem = m.add(100, footprint_bytes=128 * 1024)
        assert l1 == pytest.approx(25)
        assert l2 == pytest.approx(75)
        assert l3 == mem == 0

    def test_huge_footprint_reaches_memory(self):
        m = self._m()
        l1, l2, l3, mem = m.add(100, footprint_bytes=64 * 1024 * 1024)
        assert mem > 0
        assert l1 + l2 + l3 + mem == pytest.approx(100)

    def test_streaming_misses_once_per_line(self):
        m = self._m()
        l1, l2, l3, mem = m.add(64, footprint_bytes=0, streaming=True)
        # 8-byte elements, 64-byte lines: 1/8 of accesses leave L1
        assert l3 == pytest.approx(8)
        assert l1 == pytest.approx(56)

    def test_zero_accesses(self):
        m = self._m()
        assert m.add(0, 100) == (0.0, 0.0, 0.0, 0.0)

    def test_accumulates_and_resets(self):
        m = self._m()
        m.add(10, 1024)
        m.add(10, 1024)
        assert m.l1_frac == pytest.approx(20)
        m.reset()
        assert m.l1_frac == 0
