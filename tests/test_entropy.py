"""Unit and property tests for the entropy kernels."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.entropy import entropy, perplexity, plogp, plogp_array


class TestPlogp:
    def test_zero_is_zero(self):
        assert plogp(0.0) == 0.0

    def test_one_is_zero(self):
        assert plogp(1.0) == 0.0

    def test_half(self):
        assert plogp(0.5) == pytest.approx(-0.5)

    def test_two(self):
        assert plogp(2.0) == pytest.approx(2.0)

    def test_tiny_negative_clamped(self):
        assert plogp(-1e-15) == 0.0

    def test_meaningful_negative_raises(self):
        with pytest.raises(ValueError):
            plogp(-0.1)

    @given(st.floats(min_value=1e-12, max_value=1e6))
    def test_matches_direct_formula(self, x):
        assert plogp(x) == pytest.approx(x * math.log2(x), rel=1e-12)


class TestPlogpArray:
    def test_matches_scalar(self):
        xs = np.array([0.0, 0.25, 0.5, 1.0, 3.0])
        out = plogp_array(xs)
        for x, o in zip(xs, out):
            assert o == pytest.approx(plogp(float(x)))

    def test_empty(self):
        assert plogp_array(np.array([])).shape == (0,)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            plogp_array(np.array([0.5, -0.5]))

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50)
    )
    def test_elementwise_property(self, xs):
        arr = np.asarray(xs)
        out = plogp_array(arr)
        assert out.shape == arr.shape
        # plogp is <= 0 on [0, 1] and >= 0 on [1, inf)
        assert np.all(out[arr <= 1.0] <= 1e-12)
        assert np.all(out[arr >= 1.0] >= -1e-12)


class TestEntropy:
    def test_uniform(self):
        assert entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_degenerate(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_unnormalized_input(self):
        assert entropy(np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_all_zero(self):
        assert entropy(np.zeros(4)) == 0.0

    @given(
        st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=2, max_size=30)
    )
    def test_bounds(self, ps):
        h = entropy(np.asarray(ps))
        assert -1e-9 <= h <= math.log2(len(ps)) + 1e-9


class TestPerplexity:
    def test_uniform_perplexity_is_n(self):
        assert perplexity(np.full(16, 1 / 16)) == pytest.approx(16.0)

    def test_degenerate_is_one(self):
        assert perplexity(np.array([1.0])) == pytest.approx(1.0)
