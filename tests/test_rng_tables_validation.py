"""Tests for util.rng, util.tables and util.validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import make_rng, spawn_rngs, stable_hash64
from repro.util.rng import stable_hash64_array
from repro.util.tables import Table, format_pct, format_seconds, format_si
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_probability,
    require,
)


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_none_maps_to_fixed_seed(self):
        assert np.array_equal(make_rng(None).random(3), make_rng(0).random(3))

    def test_passthrough(self):
        g = make_rng(1)
        assert make_rng(g) is g

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 4)
        assert len(rngs) == 4
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 4

    def test_spawn_deterministic(self):
        a = [r.random() for r in spawn_rngs(7, 3)]
        b = [r.random() for r in spawn_rngs(7, 3)]
        assert a == b


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64(12345) == stable_hash64(12345)

    def test_seed_changes_hash(self):
        assert stable_hash64(1, seed=0) != stable_hash64(1, seed=1)

    def test_range(self):
        for k in (0, 1, 2**32, 2**63):
            assert 0 <= stable_hash64(k) < 2**64

    @given(st.integers(min_value=0, max_value=2**62))
    def test_avalanche_nearby_keys_differ(self, k):
        assert stable_hash64(k) != stable_hash64(k + 1)

    def test_vectorized_matches_scalar(self):
        keys = np.array([0, 1, 7, 1000, 2**40], dtype=np.uint64)
        vec = stable_hash64_array(keys, seed=3)
        for k, v in zip(keys.tolist(), vec.tolist()):
            assert stable_hash64(int(k), seed=3) == int(v)


class TestFormatting:
    def test_si(self):
        assert format_si(2.4e12) == "2.40T"
        assert format_si(30_622_564) == "30.62M"
        assert format_si(925_872) == "925.87K"
        assert format_si(42) == "42"
        assert format_si(-3e6) == "-3.00M"

    def test_seconds(self):
        assert format_seconds(8.426) == "8.426s"
        assert format_seconds(0.0521).endswith("ms")
        assert format_seconds(2e-5).endswith("us")

    def test_pct(self):
        assert format_pct(0.59) == "59.0%"
        assert format_pct(0.9986, 2) == "99.86%"


class TestTable:
    def test_render_contains_rows(self):
        t = Table("T", ["a", "b"])
        t.add_row(["x", 1])
        out = t.render()
        assert "T" in out and "x" in out and "1" in out

    def test_wrong_arity_raises(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table("T", ["v"])
        t.add_row([3.14159265])
        assert "3.142" in t.render()


class TestValidation:
    def test_require(self):
        require(True, "ok")
        with pytest.raises(ValueError, match="bad"):
            require(False, "bad")

    def test_check_positive(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ValueError):
            check_positive("x", 0)
        assert check_positive("x", 0, strict=False) == 0
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        for bad in (-0.01, 1.01):
            with pytest.raises(ValueError):
                check_probability("p", bad)

    def test_check_in_range(self):
        assert check_in_range("k", 3, 1, 5) == 3
        with pytest.raises(ValueError):
            check_in_range("k", 6, 1, 5)
